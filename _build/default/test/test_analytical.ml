(* Analytical layer: ratio composition, Theorems 1-3 properties and
   values, exact Bayes oracles, design solver. *)

let close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1.0 (Float.abs expected)
  then Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- Ratio --- *)

let test_ratio_composition () =
  let c =
    Analytical.Ratio.make ~sigma_t:3e-6 ~sigma_net:4e-6 ~sigma_gw_low:1e-6
      ~sigma_gw_high:2e-6 ()
  in
  (* (9+16+4)/(9+16+1) = 29/26 *)
  close "r" (29.0 /. 26.0) (Analytical.Ratio.r c);
  close "sigma_low" (sqrt 26e-12) (Analytical.Ratio.sigma_low c);
  close "sigma_high" (sqrt 29e-12) (Analytical.Ratio.sigma_high c)

let test_ratio_cit_at_gateway () =
  let c = Analytical.Ratio.make ~sigma_gw_low:1e-6 ~sigma_gw_high:2e-6 () in
  close "pure gw ratio" 4.0 (Analytical.Ratio.r c)

let test_ratio_noise_drives_r_to_one () =
  let r_with sigma_t =
    Analytical.Ratio.r
      (Analytical.Ratio.make ~sigma_t ~sigma_gw_low:1e-6 ~sigma_gw_high:2e-6 ())
  in
  Alcotest.(check bool) "monotone down" true (r_with 1e-6 > r_with 1e-5);
  Alcotest.(check bool) "to 1" true (r_with 1e-3 < 1.00001)

let test_ratio_invalid () =
  Alcotest.check_raises "ordering"
    (Invalid_argument "Ratio.make: sigma_gw_high < sigma_gw_low") (fun () ->
      ignore (Analytical.Ratio.make ~sigma_gw_low:2e-6 ~sigma_gw_high:1e-6 ()));
  Alcotest.check_raises "variances"
    (Invalid_argument "Ratio.r_of_variances: var_low <= 0") (fun () ->
      ignore (Analytical.Ratio.r_of_variances ~var_low:0.0 ~var_high:1.0))

(* --- Theorems --- *)

let test_v_mean_properties () =
  close "v(1) = 0.5" 0.5 (Analytical.Theorems.v_mean ~r:1.0);
  Alcotest.(check bool) "increasing in r" true
    (Analytical.Theorems.v_mean ~r:2.0 < Analytical.Theorems.v_mean ~r:4.0);
  Alcotest.(check bool) "bounded" true
    (Analytical.Theorems.v_mean ~r:1e6 < 1.0);
  (* continuity at r -> 1+ *)
  close ~tol:1e-3 "continuous at 1" 0.5 (Analytical.Theorems.v_mean ~r:1.0001)

let test_v_mean_matches_exact_oracle () =
  (* v_mean implements the exact two-normal equal-mean Bayes rate; it must
     agree with the independent quadratic-region construction. *)
  List.iter
    (fun r ->
      close ~tol:1e-9 (Printf.sprintf "r=%.2f" r)
        (Analytical.Bayes_numeric.sample_mean_exact ~sigma_l:1.0 ~sigma_h:(sqrt r))
        (Analytical.Theorems.v_mean ~r))
    [ 1.0; 1.2; 2.0; 5.0; 20.0 ]

let test_v_mean_paper_printed_shape () =
  (* The printed formula is kept for reference: it is increasing in r but
     violates v(1) = 0.5 (documented OCR corruption). *)
  close ~tol:1e-6 "printed value at 1"
    (1.0 -. (1.0 /. (2.0 *. sqrt 2.0)))
    (Analytical.Theorems.v_mean_paper_printed ~r:1.0);
  Alcotest.(check bool) "increasing" true
    (Analytical.Theorems.v_mean_paper_printed ~r:4.0
    > Analytical.Theorems.v_mean_paper_printed ~r:1.0)

let test_c_variance_values () =
  (* Independent recomputation at r = 2: a = 1 - ln2, b = 2 ln2 - 1. *)
  let a = 1.0 -. log 2.0 and b = (2.0 *. log 2.0) -. 1.0 in
  close "C_Y(2)"
    ((1.0 /. (2.0 *. a *. a)) +. (1.0 /. (2.0 *. b *. b)))
    (Analytical.Theorems.c_variance ~r:2.0);
  Alcotest.(check bool) "C_Y(1) infinite" true
    (Analytical.Theorems.c_variance ~r:1.0 = Float.infinity);
  Alcotest.(check bool) "decreasing in r" true
    (Analytical.Theorems.c_variance ~r:3.0 < Analytical.Theorems.c_variance ~r:1.5)

let test_v_variance_properties () =
  (* Monotone in n; floor 0.5; -> 1 as n -> inf. *)
  let r = 2.0 in
  Alcotest.(check bool) "monotone in n" true
    (Analytical.Theorems.v_variance ~r ~n:100
    < Analytical.Theorems.v_variance ~r ~n:1000);
  close "floor at tiny n" 0.5 (Analytical.Theorems.v_variance ~r ~n:2);
  Alcotest.(check bool) "approaches 1" true
    (Analytical.Theorems.v_variance ~r ~n:10_000_000 > 0.999);
  close "v(r=1) = 0.5" 0.5 (Analytical.Theorems.v_variance ~r:1.0 ~n:1_000_000)

let test_v_entropy_properties () =
  let r = 2.0 in
  Alcotest.(check bool) "monotone in n" true
    (Analytical.Theorems.v_entropy ~r ~n:100
    < Analytical.Theorems.v_entropy ~r ~n:1000);
  close "v(r=1) = 0.5" 0.5 (Analytical.Theorems.v_entropy ~r:1.0 ~n:1_000_000);
  Alcotest.(check bool) "increasing in r" true
    (Analytical.Theorems.v_entropy ~r:1.5 ~n:500
    < Analytical.Theorems.v_entropy ~r:3.0 ~n:500)

let test_c_entropy_value () =
  let r = 2.0 in
  let lr = log 2.0 in
  let a = log (2.0 *. lr) and b = log (1.0 /. lr) in
  close "C_H(2)"
    ((1.0 /. (2.0 *. a *. a)) +. (1.0 /. (2.0 *. b *. b)))
    (Analytical.Theorems.c_entropy ~r)

let test_n_for_detection () =
  let r = 1.5 in
  let n_var = Analytical.Theorems.n_for_detection_variance ~r ~p:0.99 in
  (* plugging back in: v(n) ~ 0.99 *)
  close ~tol:1e-3 "inverse of v_variance" 0.99
    (Analytical.Theorems.v_variance ~r ~n:(int_of_float (Float.ceil n_var)));
  Alcotest.(check bool) "harder target needs more" true
    (Analytical.Theorems.n_for_detection_variance ~r ~p:0.999 > n_var);
  Alcotest.(check bool) "r=1 impossible" true
    (Analytical.Theorems.n_for_detection_variance ~r:1.0 ~p:0.99 = Float.infinity)

let test_paper_headline_sample_sizes () =
  (* Fig 5(b) headline: with gateway jitter in the microsecond range and
     sigma_T = 1 ms, n(99%) exceeds 1e11. *)
  let r =
    Analytical.Ratio.r
      (Analytical.Ratio.make ~sigma_t:1e-3 ~sigma_gw_low:2.2e-6
         ~sigma_gw_high:3.1e-6 ())
  in
  Alcotest.(check bool) "astronomical sample size" true
    (Analytical.Theorems.n_for_detection_variance ~r ~p:0.99 > 1e11)

let test_decision_threshold_variance_between () =
  let d = Analytical.Theorems.decision_threshold_variance ~sigma2_l:1.0 ~sigma2_h:2.0 in
  Alcotest.(check bool) "between variances" true (d > 1.0 && d < 2.0);
  (* At the threshold, the two asymptotic likelihoods cross: check it is
     the known closed form 2 ln 2. *)
  close "closed form" (2.0 *. log 2.0) d

(* --- Bayes_numeric --- *)

let test_two_normal_equal_variance () =
  (* Equal sigma, means 2 apart: v = Phi(1) exactly. *)
  close ~tol:1e-9 "Phi(1)"
    (Stats.Special.normal_cdf ~mu:0.0 ~sigma:1.0 1.0)
    (Analytical.Bayes_numeric.two_normal ~mu0:0.0 ~s0:1.0 ~mu1:2.0 ~s1:1.0 ())

let test_two_normal_identical () =
  close "indistinguishable" 0.5
    (Analytical.Bayes_numeric.two_normal ~mu0:1.0 ~s0:2.0 ~mu1:1.0 ~s1:2.0 ())

let test_two_normal_matches_numeric_integral () =
  let mu0 = 0.0 and s0 = 1.0 and mu1 = 0.5 and s1 = 1.7 in
  let f0 = Stats.Special.normal_pdf ~mu:mu0 ~sigma:s0 in
  let f1 = Stats.Special.normal_pdf ~mu:mu1 ~sigma:s1 in
  let numeric =
    Analytical.Bayes_numeric.detection_max_integral ~f0 ~f1 ~lo:(-15.0) ~hi:15.0 ()
  in
  close ~tol:1e-6 "analytic = integral" numeric
    (Analytical.Bayes_numeric.two_normal ~mu0 ~s0 ~mu1 ~s1 ())

let test_two_normal_prior_extremes () =
  (* With p0 -> 1 the rule answers class 0 almost always: v -> p0. *)
  let v =
    Analytical.Bayes_numeric.two_normal ~mu0:0.0 ~s0:1.0 ~mu1:0.1 ~s1:1.0
      ~p0:0.99 ()
  in
  Alcotest.(check bool) "v ~ p0" true (v > 0.97)

let test_two_normal_region_shapes () =
  (match
     Analytical.Bayes_numeric.two_normal_region ~mu0:0.0 ~s0:1.0 ~mu1:3.0
       ~s1:1.0 ~p0:0.5
   with
  | Analytical.Bayes_numeric.Left_of x -> close "midpoint" 1.5 x
  | _ -> Alcotest.fail "expected Left_of");
  match
    Analytical.Bayes_numeric.two_normal_region ~mu0:0.0 ~s0:1.0 ~mu1:0.0
      ~s1:2.0 ~p0:0.5
  with
  | Analytical.Bayes_numeric.Between (a, b) ->
      Alcotest.(check bool) "symmetric" true (Float.abs (a +. b) < 1e-9)
  | _ -> Alcotest.fail "expected Between for narrow class 0"

let test_sample_variance_exact_properties () =
  let v100 =
    Analytical.Bayes_numeric.sample_variance_exact ~sigma2_l:1.0 ~sigma2_h:2.0
      ~n:100
  in
  let v1000 =
    Analytical.Bayes_numeric.sample_variance_exact ~sigma2_l:1.0 ~sigma2_h:2.0
      ~n:1000
  in
  Alcotest.(check bool) "monotone in n" true (v1000 > v100);
  Alcotest.(check bool) "in (0.5, 1)" true (v100 > 0.5 && v1000 < 1.0 +. 1e-9);
  close "equal variances -> 0.5" 0.5
    (Analytical.Bayes_numeric.sample_variance_exact ~sigma2_l:1.0 ~sigma2_h:1.0
       ~n:50)

let test_sample_variance_exact_vs_simulation () =
  (* Monte-Carlo check of the exact formula at small n. *)
  let n = 10 and sigma_l = 1.0 and sigma_h = sqrt 3.0 in
  let exact =
    Analytical.Bayes_numeric.sample_variance_exact ~sigma2_l:1.0 ~sigma2_h:3.0 ~n
  in
  let rng = Prng.Rng.create ~seed:171 in
  let d =
    Analytical.Theorems.decision_threshold_variance ~sigma2_l:1.0 ~sigma2_h:3.0
  in
  let trials = 40_000 in
  let correct = ref 0 in
  for i = 1 to trials do
    let sigma = if i mod 2 = 0 then sigma_l else sigma_h in
    let xs = Array.init n (fun _ -> Prng.Sampler.normal rng ~mu:0.0 ~sigma) in
    let s2 = Stats.Descriptive.variance xs in
    let guess_low = s2 <= d in
    if guess_low = (sigma = sigma_l) then incr correct
  done;
  let simulated = float_of_int !correct /. float_of_int trials in
  close ~tol:0.02 "exact matches Monte-Carlo" exact simulated

let test_entropy_normal_approx_properties () =
  let v n =
    Analytical.Bayes_numeric.sample_entropy_normal_approx ~sigma2_l:1.0
      ~sigma2_h:2.0 ~n
  in
  Alcotest.(check bool) "monotone in n" true (v 1000 > v 100);
  Alcotest.(check bool) "above floor" true (v 100 > 0.5)

(* --- Design --- *)

let req =
  {
    Analytical.Design.sigma_gw_low = 2.2e-6;
    sigma_gw_high = 3.1e-6;
    n_max = 100_000;
    v_max = 0.55;
  }

let test_design_required_sigma_meets_budget () =
  let sigma_t = Analytical.Design.required_sigma_t req in
  Alcotest.(check bool) "positive" true (sigma_t > 0.0);
  let r =
    Analytical.Ratio.r
      (Analytical.Ratio.make ~sigma_t ~sigma_gw_low:req.Analytical.Design.sigma_gw_low
         ~sigma_gw_high:req.Analytical.Design.sigma_gw_high ())
  in
  let v = Analytical.Design.worst_feature_v ~r ~n:req.Analytical.Design.n_max in
  Alcotest.(check bool) "meets the budget" true (v <= req.Analytical.Design.v_max +. 1e-6);
  (* And is tight: 2x less sigma_t violates it. *)
  let r2 =
    Analytical.Ratio.r
      (Analytical.Ratio.make ~sigma_t:(sigma_t /. 2.0)
         ~sigma_gw_low:req.Analytical.Design.sigma_gw_low
         ~sigma_gw_high:req.Analytical.Design.sigma_gw_high ())
  in
  Alcotest.(check bool) "tight" true
    (Analytical.Design.worst_feature_v ~r:r2 ~n:req.Analytical.Design.n_max
    > req.Analytical.Design.v_max)

let test_design_cit_sufficient_case () =
  (* A toothless adversary (tiny n, loose budget): CIT already passes. *)
  let weak = { req with Analytical.Design.n_max = 2; v_max = 0.99 } in
  Alcotest.(check (float 0.0)) "sigma_t = 0" 0.0
    (Analytical.Design.required_sigma_t weak)

let test_design_monotone_in_budget () =
  let tight = Analytical.Design.required_sigma_t { req with Analytical.Design.v_max = 0.51 } in
  let loose = Analytical.Design.required_sigma_t { req with Analytical.Design.v_max = 0.80 } in
  Alcotest.(check bool) "tighter budget needs more sigma_t" true (tight > loose)

let test_design_achievable_sample_size () =
  let n = Analytical.Design.achievable_sample_size ~sigma_t:1e-5 ~req in
  Alcotest.(check bool) "finite & > n for bigger sigma" true
    (Float.is_finite n
    && n < Analytical.Design.achievable_sample_size ~sigma_t:1e-4 ~req)

let test_design_overhead () =
  close "10pps on 10ms timer" 0.9
    (Analytical.Design.overhead_fraction ~payload_rate_pps:10.0 ~timer_mean:0.01);
  close "saturated" 0.0
    (Analytical.Design.overhead_fraction ~payload_rate_pps:200.0 ~timer_mean:0.01)

let test_design_invalid () =
  Alcotest.check_raises "v_max" (Invalid_argument "Design: v_max out of (0.5, 1)")
    (fun () ->
      ignore
        (Analytical.Design.required_sigma_t { req with Analytical.Design.v_max = 0.4 }))

let prop_theorems_bounded =
  QCheck.Test.make ~name:"all detection rates in [0.5, 1]" ~count:300
    QCheck.(pair (float_range 1.0 100.0) (int_range 2 100_000))
    (fun (r, n) ->
      let vs =
        [
          Analytical.Theorems.v_mean ~r;
          Analytical.Theorems.v_variance ~r ~n;
          Analytical.Theorems.v_entropy ~r ~n;
        ]
      in
      List.for_all (fun v -> v >= 0.5 -. 1e-12 && v <= 1.0 +. 1e-12) vs)

let prop_theorems_monotone_in_r =
  QCheck.Test.make ~name:"detection increasing in r" ~count:200
    QCheck.(triple (float_range 1.01 50.0) (float_range 1.0 2.0) (int_range 10 10_000))
    (fun (r, factor, n) ->
      let r2 = r *. factor in
      Analytical.Theorems.v_variance ~r ~n
      <= Analytical.Theorems.v_variance ~r:r2 ~n +. 1e-12
      && Analytical.Theorems.v_entropy ~r ~n
         <= Analytical.Theorems.v_entropy ~r:r2 ~n +. 1e-12
      && Analytical.Theorems.v_mean ~r
         <= Analytical.Theorems.v_mean ~r:r2 +. 1e-12)

let prop_two_normal_bounded =
  QCheck.Test.make ~name:"two-normal Bayes rate in [max(p0,p1), 1]" ~count:200
    QCheck.(
      quad (float_range (-5.0) 5.0) (float_range 0.1 5.0) (float_range (-5.0) 5.0)
        (float_range 0.1 5.0))
    (fun (mu0, s0, mu1, s1) ->
      let v = Analytical.Bayes_numeric.two_normal ~mu0 ~s0 ~mu1 ~s1 () in
      v >= 0.5 -. 1e-9 && v <= 1.0 +. 1e-9)

let suite =
  [
    Alcotest.test_case "ratio composition" `Quick test_ratio_composition;
    Alcotest.test_case "ratio pure gateway" `Quick test_ratio_cit_at_gateway;
    Alcotest.test_case "noise drives r to 1" `Quick test_ratio_noise_drives_r_to_one;
    Alcotest.test_case "ratio invalid" `Quick test_ratio_invalid;
    Alcotest.test_case "v_mean properties" `Quick test_v_mean_properties;
    Alcotest.test_case "v_mean = exact oracle" `Quick test_v_mean_matches_exact_oracle;
    Alcotest.test_case "printed Thm1 shape" `Quick test_v_mean_paper_printed_shape;
    Alcotest.test_case "C_Y values" `Quick test_c_variance_values;
    Alcotest.test_case "v_variance properties" `Quick test_v_variance_properties;
    Alcotest.test_case "v_entropy properties" `Quick test_v_entropy_properties;
    Alcotest.test_case "C_H value" `Quick test_c_entropy_value;
    Alcotest.test_case "n_for_detection inverse" `Quick test_n_for_detection;
    Alcotest.test_case "paper headline n(99%)" `Quick test_paper_headline_sample_sizes;
    Alcotest.test_case "variance threshold" `Quick test_decision_threshold_variance_between;
    Alcotest.test_case "two-normal equal variance" `Quick test_two_normal_equal_variance;
    Alcotest.test_case "two-normal identical" `Quick test_two_normal_identical;
    Alcotest.test_case "two-normal = integral" `Quick test_two_normal_matches_numeric_integral;
    Alcotest.test_case "two-normal prior extremes" `Quick test_two_normal_prior_extremes;
    Alcotest.test_case "two-normal regions" `Quick test_two_normal_region_shapes;
    Alcotest.test_case "S^2 exact properties" `Quick test_sample_variance_exact_properties;
    Alcotest.test_case "S^2 exact vs Monte-Carlo" `Quick test_sample_variance_exact_vs_simulation;
    Alcotest.test_case "entropy approx properties" `Quick test_entropy_normal_approx_properties;
    Alcotest.test_case "design meets budget" `Quick test_design_required_sigma_meets_budget;
    Alcotest.test_case "design CIT-sufficient case" `Quick test_design_cit_sufficient_case;
    Alcotest.test_case "design monotone" `Quick test_design_monotone_in_budget;
    Alcotest.test_case "design achievable n" `Quick test_design_achievable_sample_size;
    Alcotest.test_case "design overhead" `Quick test_design_overhead;
    Alcotest.test_case "design invalid" `Quick test_design_invalid;
    QCheck_alcotest.to_alcotest prop_theorems_bounded;
    QCheck_alcotest.to_alcotest prop_theorems_monotone_in_r;
    QCheck_alcotest.to_alcotest prop_two_normal_bounded;
  ]
