(* Entropy estimators: exact discrete values, the paper's eq. 24/25
   estimator against the closed-form Gaussian entropy, and properties. *)

let close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let test_uniform_probabilities () =
  close "H(uniform k=4) = ln 4" (log 4.0)
    (Stats.Entropy.of_probabilities (Array.make 4 0.25))

let test_deterministic () =
  close "H(point mass) = 0" 0.0
    (Stats.Entropy.of_probabilities [| 1.0; 0.0; 0.0 |])

let test_binary () =
  let p = 0.3 in
  close "binary entropy"
    (-.((p *. log p) +. ((1.0 -. p) *. log (1.0 -. p))))
    (Stats.Entropy.of_probabilities [| p; 1.0 -. p |])

let test_negative_raises () =
  Alcotest.check_raises "negative mass"
    (Invalid_argument "Entropy.of_probabilities: negative mass") (fun () ->
      ignore (Stats.Entropy.of_probabilities [| 0.5; -0.1 |]))

let test_histogram_plugin_uniform () =
  let h = Stats.Histogram.create ~lo:0.0 ~bin_width:1.0 ~bins:4 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 2.5; 3.5 ];
  close "plugin = ln 4" (log 4.0) (Stats.Entropy.histogram_plugin h)

let test_differential_vs_plugin_offset () =
  let h = Stats.Histogram.create ~lo:0.0 ~bin_width:0.5 ~bins:4 in
  List.iter (Stats.Histogram.add h) [ 0.1; 0.6; 1.1; 1.6 ];
  close "differential = plugin + ln dh"
    (Stats.Entropy.histogram_plugin h +. log 0.5)
    (Stats.Entropy.histogram_differential h)

let test_normal_differential_formula () =
  close "H(N(0,1))" (0.5 *. log (2.0 *. Float.pi *. Float.exp 1.0))
    (Stats.Entropy.normal_differential ~sigma:1.0);
  (* doubling sigma adds ln 2 *)
  close "scale law" (log 2.0)
    (Stats.Entropy.normal_differential ~sigma:2.0
    -. Stats.Entropy.normal_differential ~sigma:1.0)

let test_estimator_matches_gaussian () =
  (* eq. 24 estimator on a big Gaussian sample should approach the
     closed-form differential entropy (Moddemeijer 1989). *)
  let rng = Prng.Rng.create ~seed:51 in
  let sigma = 2.5 in
  let xs = Array.init 60_000 (fun _ -> Prng.Sampler.normal rng ~mu:1.0 ~sigma) in
  let bin_width = 0.1 in
  let plugin = Stats.Entropy.of_sample ~bin_width ~reference:1.0 xs in
  let differential = plugin +. log bin_width in
  let exact = Stats.Entropy.normal_differential ~sigma in
  close ~tol:0.02 "plugin + ln dh ~ H" exact differential

let test_estimator_monotone_in_sigma () =
  (* The whole attack rests on this: higher sigma -> higher sample
     entropy at fixed bin width. *)
  let rng = Prng.Rng.create ~seed:52 in
  let entropy sigma =
    let xs = Array.init 20_000 (fun _ -> Prng.Sampler.normal rng ~mu:0.0 ~sigma) in
    Stats.Entropy.of_sample ~bin_width:0.05 ~reference:0.0 xs
  in
  let h1 = entropy 1.0 and h2 = entropy 1.3 in
  Alcotest.(check bool) "H(sigma=1.3) > H(sigma=1)" true (h2 > h1)

let test_estimator_grid_anchoring () =
  (* Same data shifted by an integer number of bins: identical entropy. *)
  let rng = Prng.Rng.create ~seed:53 in
  let xs = Array.init 5_000 (fun _ -> Prng.Sampler.normal rng ~mu:0.0 ~sigma:1.0) in
  let shifted = Array.map (fun x -> x +. 0.4) xs in
  let h0 = Stats.Entropy.of_sample ~bin_width:0.1 ~reference:0.0 xs in
  let h1 = Stats.Entropy.of_sample ~bin_width:0.1 ~reference:0.4 shifted in
  close ~tol:1e-9 "anchored grids agree" h0 h1

let test_estimator_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Entropy.of_sample: empty")
    (fun () ->
      ignore (Stats.Entropy.of_sample ~bin_width:0.1 ~reference:0.0 [||]));
  Alcotest.check_raises "bad width"
    (Invalid_argument "Entropy.of_sample: bin_width <= 0") (fun () ->
      ignore (Stats.Entropy.of_sample ~bin_width:0.0 ~reference:0.0 [| 1.0 |]))

let prop_entropy_bounds =
  QCheck.Test.make ~name:"0 <= plugin entropy <= ln bins" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 200) (float_bound_exclusive 10.0))
    (fun xs ->
      let h = Stats.Histogram.of_data ~bins:16 xs in
      let e = Stats.Entropy.histogram_plugin h in
      e >= -1e-12 && e <= log 16.0 +. 1e-12)

let prop_of_sample_nonneg =
  QCheck.Test.make ~name:"sample entropy >= 0" ~count:200
    QCheck.(array_of_size Gen.(int_range 2 200) (float_bound_exclusive 10.0))
    (fun xs ->
      Stats.Entropy.of_sample ~bin_width:0.5 ~reference:0.0 xs >= -1e-12)

let suite =
  [
    Alcotest.test_case "uniform probabilities" `Quick test_uniform_probabilities;
    Alcotest.test_case "point mass" `Quick test_deterministic;
    Alcotest.test_case "binary entropy" `Quick test_binary;
    Alcotest.test_case "negative mass raises" `Quick test_negative_raises;
    Alcotest.test_case "plugin on uniform histogram" `Quick test_histogram_plugin_uniform;
    Alcotest.test_case "eq24 = eq25 + ln dh" `Quick test_differential_vs_plugin_offset;
    Alcotest.test_case "normal differential formula" `Quick test_normal_differential_formula;
    Alcotest.test_case "estimator ~ Gaussian entropy" `Quick test_estimator_matches_gaussian;
    Alcotest.test_case "estimator monotone in sigma" `Quick test_estimator_monotone_in_sigma;
    Alcotest.test_case "grid anchoring" `Quick test_estimator_grid_anchoring;
    Alcotest.test_case "estimator invalid args" `Quick test_estimator_invalid;
    QCheck_alcotest.to_alcotest prop_entropy_bounds;
    QCheck_alcotest.to_alcotest prop_of_sample_nonneg;
  ]
