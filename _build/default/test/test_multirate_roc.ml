(* Discrete distributions, m-ary analytics, and ROC. *)

let close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1.0 (Float.abs expected)
  then Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- Discrete --- *)

let test_poisson_pmf_values () =
  let d = Stats.Discrete.poisson ~mean:3.0 in
  close "pmf(0)" (exp (-3.0)) (d.Stats.Discrete.pmf 0);
  close "pmf(3)" (27.0 /. 6.0 *. exp (-3.0)) (d.Stats.Discrete.pmf 3);
  close "pmf(-1)" 0.0 (d.Stats.Discrete.pmf (-1));
  close "mean" 3.0 d.Stats.Discrete.mean

let test_poisson_pmf_sums_to_one () =
  let d = Stats.Discrete.poisson ~mean:7.5 in
  let total = ref 0.0 in
  for k = 0 to 100 do
    total := !total +. d.Stats.Discrete.pmf k
  done;
  close ~tol:1e-9 "mass 1" 1.0 !total

let test_poisson_cdf_consistent () =
  let d = Stats.Discrete.poisson ~mean:4.2 in
  let acc = ref 0.0 in
  for k = 0 to 12 do
    acc := !acc +. d.Stats.Discrete.pmf k;
    close ~tol:1e-9 (Printf.sprintf "cdf(%d)" k) !acc (d.Stats.Discrete.cdf k)
  done

let test_binomial () =
  let d = Stats.Discrete.binomial ~n:10 ~p:0.3 in
  close "pmf(0)" (0.7 ** 10.0) (d.Stats.Discrete.pmf 0);
  close "mean" 3.0 d.Stats.Discrete.mean;
  close "variance" 2.1 d.Stats.Discrete.variance;
  close "cdf(10)" 1.0 (d.Stats.Discrete.cdf 10);
  let total = ref 0.0 in
  for k = 0 to 10 do
    total := !total +. d.Stats.Discrete.pmf k
  done;
  close "mass" 1.0 !total

let test_geometric_discrete () =
  let d = Stats.Discrete.geometric ~p:0.25 in
  close "pmf(0)" 0.25 (d.Stats.Discrete.pmf 0);
  close "pmf(2)" (0.25 *. 0.5625) (d.Stats.Discrete.pmf 2);
  close "mean" 3.0 d.Stats.Discrete.mean

let test_discrete_sampling_moments () =
  let rng = Prng.Rng.create ~seed:261 in
  let d = Stats.Discrete.poisson ~mean:5.0 in
  let acc = Stats.Descriptive.Acc.create () in
  for _ = 1 to 50_000 do
    Stats.Descriptive.Acc.add acc (float_of_int (d.Stats.Discrete.sample rng))
  done;
  close ~tol:0.03 "sample mean" 5.0 (Stats.Descriptive.Acc.mean acc)

let test_bayes_detection_two_poisson () =
  (* Counting attack theory: Poisson(10) vs Poisson(40) per 1 s window is
     nearly separable; identical means give 0.5. *)
  let v =
    Stats.Discrete.bayes_detection_two (Stats.Discrete.poisson ~mean:10.0)
      (Stats.Discrete.poisson ~mean:40.0) ()
  in
  Alcotest.(check bool) "nearly separable" true (v > 0.99);
  let same =
    Stats.Discrete.bayes_detection_two (Stats.Discrete.poisson ~mean:10.0)
      (Stats.Discrete.poisson ~mean:10.0) ()
  in
  close ~tol:1e-6 "identical -> 0.5" 0.5 same

let test_bayes_detection_matches_simulation () =
  let d0 = Stats.Discrete.poisson ~mean:8.0 in
  let d1 = Stats.Discrete.poisson ~mean:13.0 in
  let exact = Stats.Discrete.bayes_detection_two d0 d1 () in
  let rng = Prng.Rng.create ~seed:262 in
  let trials = 40_000 in
  let correct = ref 0 in
  for i = 1 to trials do
    let from_d1 = i mod 2 = 0 in
    let k = if from_d1 then d1.Stats.Discrete.sample rng else d0.Stats.Discrete.sample rng in
    let guess_d1 = d1.Stats.Discrete.pmf k > d0.Stats.Discrete.pmf k in
    if guess_d1 = from_d1 then incr correct
  done;
  close ~tol:0.02 "Monte-Carlo agrees" exact
    (float_of_int !correct /. float_of_int trials)

(* --- Analytical.Multirate --- *)

let sigma2s = [| 1.0; 1.5; 2.2; 3.5 |]

let test_pairwise_r () =
  let r = Analytical.Multirate.pairwise_r ~sigma2s in
  close "diag" 1.0 r.(2).(2);
  close "symmetric" r.(0).(3) r.(3).(0);
  close "value" 3.5 r.(0).(3)

let test_thresholds_interleave () =
  let d = Analytical.Multirate.thresholds_variance ~sigma2s ~n:100 in
  Alcotest.(check int) "m-1 thresholds" 3 (Array.length d);
  Array.iteri
    (fun i t ->
      if not (t > sigma2s.(i) && t < sigma2s.(i + 1)) then
        Alcotest.failf "threshold %d = %f not in (%f, %f)" i t sigma2s.(i)
          sigma2s.(i + 1))
    d

let test_mary_reduces_to_binary () =
  let two = [| 1.0; 2.0 |] in
  close ~tol:1e-12 "m=2 = two-class exact"
    (Analytical.Bayes_numeric.sample_variance_exact ~sigma2_l:1.0 ~sigma2_h:2.0
       ~n:200)
    (Analytical.Multirate.mary_variance_exact ~sigma2s:two ~n:200)

let test_mary_properties () =
  let v100 = Analytical.Multirate.mary_variance_exact ~sigma2s ~n:100 in
  let v1000 = Analytical.Multirate.mary_variance_exact ~sigma2s ~n:1000 in
  Alcotest.(check bool) "above floor" true (v100 > 0.25);
  Alcotest.(check bool) "monotone in n" true (v1000 > v100);
  Alcotest.(check bool) "below 1" true (v1000 <= 1.0);
  (* more classes with the same spread are harder *)
  let v_two =
    Analytical.Bayes_numeric.sample_variance_exact ~sigma2_l:1.0 ~sigma2_h:3.5
      ~n:100
  in
  Alcotest.(check bool) "4-ary harder than extreme pair" true (v100 < v_two)

let test_confusion_rows_sum () =
  let c = Analytical.Multirate.confusion_variance_exact ~sigma2s ~n:60 in
  Array.iteri
    (fun i row ->
      let s = Array.fold_left ( +. ) 0.0 row in
      if Float.abs (s -. 1.0) > 1e-9 then Alcotest.failf "row %d sums to %f" i s;
      (* diagonal should dominate for adjacent confusion at this n *)
      Alcotest.(check bool) "diag max" true
        (Array.for_all (fun x -> x <= row.(i) +. 1e-12) row))
    c

let test_mary_confusion_matches_simulation () =
  let rng = Prng.Rng.create ~seed:263 in
  let n = 30 in
  let sigma2s = [| 1.0; 2.0 |] in
  let exact = Analytical.Multirate.mary_variance_exact ~sigma2s ~n in
  let trials = 30_000 in
  let thresholds = Analytical.Multirate.thresholds_variance ~sigma2s ~n in
  let correct = ref 0 in
  for i = 1 to trials do
    let cls = i mod 2 in
    let sigma = sqrt sigma2s.(cls) in
    let xs = Array.init n (fun _ -> Prng.Sampler.normal rng ~mu:0.0 ~sigma) in
    let s2 = Stats.Descriptive.variance xs in
    let decision = if s2 <= thresholds.(0) then 0 else 1 in
    if decision = cls then incr correct
  done;
  close ~tol:0.02 "simulated m-ary accuracy" exact
    (float_of_int !correct /. float_of_int trials)

let test_mary_max_integral () =
  (* Two disjoint normals: detection -> 1; identical: 0.5. *)
  let f mu x = Stats.Special.normal_pdf ~mu ~sigma:0.1 x in
  close ~tol:1e-6 "disjoint -> 1" 1.0
    (Analytical.Multirate.mary_max_integral ~pdfs:[| f 0.0; f 10.0 |]
       ~lo:(-5.0) ~hi:15.0);
  close ~tol:1e-6 "identical -> 0.5" 0.5
    (Analytical.Multirate.mary_max_integral ~pdfs:[| f 0.0; f 0.0 |]
       ~lo:(-5.0) ~hi:5.0)

let test_multirate_invalid () =
  Alcotest.check_raises "not increasing"
    (Invalid_argument "Multirate: variances must be strictly increasing")
    (fun () ->
      ignore
        (Analytical.Multirate.thresholds_variance ~sigma2s:[| 2.0; 1.0 |] ~n:10))

(* --- ROC --- *)

let test_roc_separable () =
  let negatives = [| 1.0; 2.0; 3.0 |] and positives = [| 10.0; 11.0; 12.0 |] in
  close "AUC 1" 1.0 (Adversary.Roc.auc ~negatives ~positives);
  let _, acc = Adversary.Roc.best_accuracy ~negatives ~positives in
  close "best accuracy 1" 1.0 acc

let test_roc_blind () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  close "AUC self" 0.5 (Adversary.Roc.auc ~negatives:xs ~positives:xs)

let test_roc_auc_against_hand_count () =
  (* negatives {1,3}, positives {2,4}: pairs (2>1),(2<3),(4>1),(4>3) ->
     3/4 *)
  close "hand AUC" 0.75
    (Adversary.Roc.auc ~negatives:[| 1.0; 3.0 |] ~positives:[| 2.0; 4.0 |])

let test_roc_curve_monotone_endpoints () =
  let rng = Prng.Rng.create ~seed:264 in
  let negatives = Array.init 200 (fun _ -> Prng.Sampler.normal rng ~mu:0.0 ~sigma:1.0) in
  let positives = Array.init 200 (fun _ -> Prng.Sampler.normal rng ~mu:1.0 ~sigma:1.0) in
  let pts = Adversary.Roc.curve ~negatives ~positives in
  (match pts with
  | first :: _ ->
      close "starts at (0,0) fa" 0.0 first.Adversary.Roc.false_alarm;
      close "starts at (0,0) hit" 0.0 first.Adversary.Roc.hit_rate
  | [] -> Alcotest.fail "empty curve");
  let last = List.nth pts (List.length pts - 1) in
  close "ends at (1,1) fa" 1.0 last.Adversary.Roc.false_alarm;
  close "ends at (1,1) hit" 1.0 last.Adversary.Roc.hit_rate;
  (* monotone non-decreasing along the curve *)
  let rec check_monotone = function
    | a :: (b :: _ as rest) ->
        if
          b.Adversary.Roc.false_alarm < a.Adversary.Roc.false_alarm -. 1e-12
          || b.Adversary.Roc.hit_rate < a.Adversary.Roc.hit_rate -. 1e-12
        then Alcotest.fail "curve not monotone"
        else check_monotone rest
    | _ -> ()
  in
  check_monotone pts

let test_roc_auc_matches_gaussian_theory () =
  (* For N(0,1) vs N(d,1), AUC = Phi(d/sqrt 2). *)
  let rng = Prng.Rng.create ~seed:265 in
  let d = 1.5 in
  let negatives = Array.init 8000 (fun _ -> Prng.Sampler.normal rng ~mu:0.0 ~sigma:1.0) in
  let positives = Array.init 8000 (fun _ -> Prng.Sampler.normal rng ~mu:d ~sigma:1.0) in
  close ~tol:0.02 "AUC = Phi(d/sqrt2)"
    (Stats.Special.normal_cdf ~mu:0.0 ~sigma:1.0 (d /. sqrt 2.0))
    (Adversary.Roc.auc ~negatives ~positives)

let test_roc_best_accuracy_matches_bayes () =
  (* Equal-variance normals: best threshold ~ midpoint, accuracy ~ Phi(d/2). *)
  let rng = Prng.Rng.create ~seed:266 in
  let d = 2.0 in
  let negatives = Array.init 5000 (fun _ -> Prng.Sampler.normal rng ~mu:0.0 ~sigma:1.0) in
  let positives = Array.init 5000 (fun _ -> Prng.Sampler.normal rng ~mu:d ~sigma:1.0) in
  let threshold, acc = Adversary.Roc.best_accuracy ~negatives ~positives in
  close ~tol:0.15 "threshold near midpoint" 1.0 threshold;
  close ~tol:0.02 "accuracy near Phi(1)"
    (Stats.Special.normal_cdf ~mu:0.0 ~sigma:1.0 1.0)
    acc

let test_roc_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Roc: empty class") (fun () ->
      ignore (Adversary.Roc.auc ~negatives:[||] ~positives:[| 1.0 |]))

let suite =
  [
    Alcotest.test_case "poisson pmf values" `Quick test_poisson_pmf_values;
    Alcotest.test_case "poisson mass" `Quick test_poisson_pmf_sums_to_one;
    Alcotest.test_case "poisson cdf" `Quick test_poisson_cdf_consistent;
    Alcotest.test_case "binomial" `Quick test_binomial;
    Alcotest.test_case "geometric" `Quick test_geometric_discrete;
    Alcotest.test_case "discrete sampling" `Quick test_discrete_sampling_moments;
    Alcotest.test_case "two-poisson Bayes" `Quick test_bayes_detection_two_poisson;
    Alcotest.test_case "discrete Bayes = Monte-Carlo" `Quick test_bayes_detection_matches_simulation;
    Alcotest.test_case "pairwise r" `Quick test_pairwise_r;
    Alcotest.test_case "thresholds interleave" `Quick test_thresholds_interleave;
    Alcotest.test_case "m=2 reduces to binary" `Quick test_mary_reduces_to_binary;
    Alcotest.test_case "m-ary properties" `Quick test_mary_properties;
    Alcotest.test_case "confusion rows sum to 1" `Quick test_confusion_rows_sum;
    Alcotest.test_case "m-ary = Monte-Carlo" `Quick test_mary_confusion_matches_simulation;
    Alcotest.test_case "m-ary max integral" `Quick test_mary_max_integral;
    Alcotest.test_case "multirate invalid" `Quick test_multirate_invalid;
    Alcotest.test_case "ROC separable" `Quick test_roc_separable;
    Alcotest.test_case "ROC blind" `Quick test_roc_blind;
    Alcotest.test_case "ROC hand count" `Quick test_roc_auc_against_hand_count;
    Alcotest.test_case "ROC curve endpoints" `Quick test_roc_curve_monotone_endpoints;
    Alcotest.test_case "ROC AUC gaussian theory" `Quick test_roc_auc_matches_gaussian_theory;
    Alcotest.test_case "ROC best accuracy" `Quick test_roc_best_accuracy_matches_bayes;
    Alcotest.test_case "ROC invalid" `Quick test_roc_invalid;
  ]
