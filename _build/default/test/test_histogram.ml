(* Histogram: binning, density normalization, clamping, qcheck mass laws. *)

let close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let test_basic_binning () =
  let h = Stats.Histogram.create ~lo:0.0 ~bin_width:1.0 ~bins:4 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.7; 3.9 ];
  Alcotest.(check int) "bin 0" 1 (Stats.Histogram.bin_count h 0);
  Alcotest.(check int) "bin 1" 2 (Stats.Histogram.bin_count h 1);
  Alcotest.(check int) "bin 2" 0 (Stats.Histogram.bin_count h 2);
  Alcotest.(check int) "bin 3" 1 (Stats.Histogram.bin_count h 3);
  Alcotest.(check int) "total" 4 (Stats.Histogram.count h)

let test_boundary_goes_up () =
  let h = Stats.Histogram.create ~lo:0.0 ~bin_width:1.0 ~bins:3 in
  Stats.Histogram.add h 1.0;
  Alcotest.(check int) "boundary in upper bin" 1 (Stats.Histogram.bin_count h 1)

let test_clamping () =
  let h = Stats.Histogram.create ~lo:0.0 ~bin_width:1.0 ~bins:3 in
  Stats.Histogram.add h (-5.0);
  Stats.Histogram.add h 100.0;
  Alcotest.(check int) "low outlier clamped" 1 (Stats.Histogram.bin_count h 0);
  Alcotest.(check int) "high outlier clamped" 1 (Stats.Histogram.bin_count h 2)

let test_bin_center () =
  let h = Stats.Histogram.create ~lo:10.0 ~bin_width:2.0 ~bins:3 in
  close "center of bin 1" 13.0 (Stats.Histogram.bin_center h 1)

let test_density_integrates_to_one () =
  let rng = Prng.Rng.create ~seed:41 in
  let h = Stats.Histogram.create ~lo:(-4.0) ~bin_width:0.25 ~bins:32 in
  for _ = 1 to 20_000 do
    Stats.Histogram.add h (Prng.Sampler.normal rng ~mu:0.0 ~sigma:1.0)
  done;
  let mass = ref 0.0 in
  for i = 0 to Stats.Histogram.bins h - 1 do
    mass := !mass +. (Stats.Histogram.density h i *. Stats.Histogram.bin_width h)
  done;
  close ~tol:1e-9 "sum density*width = 1" 1.0 !mass

let test_probabilities_sum () =
  let h = Stats.Histogram.of_data [| 1.0; 2.0; 2.5; 3.0; 7.0 |] in
  let ps = Stats.Histogram.probabilities h in
  close "sum = 1" 1.0 (Array.fold_left ( +. ) 0.0 ps)

let test_of_data_covers_range () =
  let xs = [| -3.0; 0.0; 5.0; 9.0 |] in
  let h = Stats.Histogram.of_data ~bins:8 xs in
  Alcotest.(check int) "all points binned" 4 (Stats.Histogram.count h);
  Alcotest.(check int) "requested bins" 8 (Stats.Histogram.bins h)

let test_of_data_constant () =
  let h = Stats.Histogram.of_data (Array.make 5 2.0) in
  Alcotest.(check int) "constant data all in" 5 (Stats.Histogram.count h)

let test_mode_bin () =
  let h = Stats.Histogram.create ~lo:0.0 ~bin_width:1.0 ~bins:3 in
  List.iter (Stats.Histogram.add h) [ 0.1; 1.1; 1.2; 1.3; 2.5 ];
  Alcotest.(check int) "mode" 1 (Stats.Histogram.mode_bin h)

let test_invalid_args () =
  Alcotest.check_raises "bad width"
    (Invalid_argument "Histogram.create: bin_width <= 0") (fun () ->
      ignore (Stats.Histogram.create ~lo:0.0 ~bin_width:0.0 ~bins:3));
  Alcotest.check_raises "bad bins" (Invalid_argument "Histogram.create: bins <= 0")
    (fun () -> ignore (Stats.Histogram.create ~lo:0.0 ~bin_width:1.0 ~bins:0));
  let h = Stats.Histogram.create ~lo:0.0 ~bin_width:1.0 ~bins:2 in
  Alcotest.check_raises "index range"
    (Invalid_argument "Histogram: bin index out of range") (fun () ->
      ignore (Stats.Histogram.bin_count h 2))

let prop_mass_conserved =
  QCheck.Test.make ~name:"every observation lands in exactly one bin" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 100) (float_bound_exclusive 50.0))
    (fun xs ->
      let h = Stats.Histogram.create ~lo:0.0 ~bin_width:5.0 ~bins:10 in
      Array.iter (Stats.Histogram.add h) xs;
      let total = ref 0 in
      for i = 0 to 9 do
        total := !total + Stats.Histogram.bin_count h i
      done;
      !total = Array.length xs)

let prop_probabilities_normalized =
  QCheck.Test.make ~name:"probabilities sum to 1" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 100) (float_bound_exclusive 50.0))
    (fun xs ->
      let h = Stats.Histogram.of_data ~bins:16 xs in
      let s = Array.fold_left ( +. ) 0.0 (Stats.Histogram.probabilities h) in
      Float.abs (s -. 1.0) < 1e-9)

let suite =
  [
    Alcotest.test_case "basic binning" `Quick test_basic_binning;
    Alcotest.test_case "boundary bin" `Quick test_boundary_goes_up;
    Alcotest.test_case "outlier clamping" `Quick test_clamping;
    Alcotest.test_case "bin center" `Quick test_bin_center;
    Alcotest.test_case "density normalization" `Quick test_density_integrates_to_one;
    Alcotest.test_case "probabilities sum" `Quick test_probabilities_sum;
    Alcotest.test_case "of_data coverage" `Quick test_of_data_covers_range;
    Alcotest.test_case "of_data constant data" `Quick test_of_data_constant;
    Alcotest.test_case "mode bin" `Quick test_mode_bin;
    Alcotest.test_case "invalid args" `Quick test_invalid_args;
    QCheck_alcotest.to_alcotest prop_mass_conserved;
    QCheck_alcotest.to_alcotest prop_probabilities_normalized;
  ]
