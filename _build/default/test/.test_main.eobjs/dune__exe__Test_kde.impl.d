test/test_kde.ml: Alcotest Array Float Gen List Prng QCheck QCheck_alcotest Stats
