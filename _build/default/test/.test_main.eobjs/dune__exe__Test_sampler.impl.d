test/test_sampler.ml: Alcotest Array Float Fun Prng Stats
