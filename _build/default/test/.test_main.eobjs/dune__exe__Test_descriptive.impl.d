test/test_descriptive.ml: Alcotest Array Float Gen Prng QCheck QCheck_alcotest Stats String
