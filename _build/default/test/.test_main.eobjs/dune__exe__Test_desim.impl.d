test/test_desim.ml: Alcotest Desim Float Gen List Prng QCheck QCheck_alcotest
