test/test_integration.ml: Adversary Alcotest Array Float Format Linkpad List Padding Scenarios Stats String
