test/test_proc.ml: Alcotest Array Desim Float List Netsim Padding Prng
