test/test_special.ml: Alcotest Float List Stats
