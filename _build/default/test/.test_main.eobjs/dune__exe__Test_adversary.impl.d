test/test_adversary.ml: Adversary Alcotest Array Float Fun Gen List Prng QCheck QCheck_alcotest
