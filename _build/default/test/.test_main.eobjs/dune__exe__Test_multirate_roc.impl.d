test/test_multirate_roc.ml: Adversary Alcotest Analytical Array Float List Printf Prng Stats
