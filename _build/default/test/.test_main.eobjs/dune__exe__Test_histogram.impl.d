test/test_histogram.ml: Alcotest Array Float Gen List Prng QCheck QCheck_alcotest Stats
