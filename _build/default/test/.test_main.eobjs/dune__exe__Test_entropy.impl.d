test/test_entropy.ml: Alcotest Array Float Gen List Prng QCheck QCheck_alcotest Stats
