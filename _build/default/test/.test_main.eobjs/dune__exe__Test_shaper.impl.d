test/test_shaper.ml: Alcotest Desim Netsim Printf Prng
