test/test_stress.ml: Adversary Alcotest Array Desim Float List Netsim Padding Printf Prng Scenarios
