test/test_extensions.ml: Adversary Alcotest Analytical Array Desim Filename Float Fun List Netsim Padding Printf Prng Scenarios Stats String Sys
