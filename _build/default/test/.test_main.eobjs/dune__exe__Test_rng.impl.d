test/test_rng.ml: Alcotest Array Float Fun Int64 Prng Stats
