test/test_sizes.ml: Adversary Alcotest Array Desim Float List Netsim Padding Prng
