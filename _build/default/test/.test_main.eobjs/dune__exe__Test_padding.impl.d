test/test_padding.ml: Alcotest Array Desim Float List Netsim Padding Prng Stats
