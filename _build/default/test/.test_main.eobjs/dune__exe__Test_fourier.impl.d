test/test_fourier.ml: Alcotest Array Float Gen List Printf Prng QCheck QCheck_alcotest Stats
