test/test_numerics.ml: Alcotest Array Float Prng QCheck QCheck_alcotest Stats
