test/test_distribution.ml: Alcotest Array Float List Printf Prng QCheck QCheck_alcotest Stats
