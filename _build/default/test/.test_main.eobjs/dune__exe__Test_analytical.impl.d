test/test_analytical.ml: Alcotest Analytical Array Float List Printf Prng QCheck QCheck_alcotest Stats
