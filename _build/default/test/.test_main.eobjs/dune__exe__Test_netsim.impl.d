test/test_netsim.ml: Alcotest Array Desim Float List Netsim Prng Stats
