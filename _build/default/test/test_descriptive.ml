(* Descriptive statistics: array helpers vs hand values, Welford
   accumulator vs two-pass results, merge law, and qcheck properties. *)

let close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1.0 (Float.abs expected)
  then Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let data = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |]

let test_mean () = close "mean" 5.0 (Stats.Descriptive.mean data)

let test_variance () =
  (* population var of this classic dataset is 4; sample var = 4 * 8/7 *)
  close "sample variance" (32.0 /. 7.0) (Stats.Descriptive.variance data)

let test_std () = close "std" (sqrt (32.0 /. 7.0)) (Stats.Descriptive.std data)

let test_minmax () =
  close "min" 2.0 (Stats.Descriptive.minimum data);
  close "max" 9.0 (Stats.Descriptive.maximum data)

let test_median_even () = close "median even" 4.5 (Stats.Descriptive.median data)

let test_median_odd () =
  close "median odd" 3.0 (Stats.Descriptive.median [| 9.0; 1.0; 3.0 |])

let test_quantile_endpoints () =
  close "q0 = min" 2.0 (Stats.Descriptive.quantile data 0.0);
  close "q1 = max" 9.0 (Stats.Descriptive.quantile data 1.0)

let test_quantile_interpolation () =
  (* type-7 quantile of [10,20,30,40] at 0.5 -> 25 *)
  close "interpolated" 25.0
    (Stats.Descriptive.quantile [| 40.0; 10.0; 30.0; 20.0 |] 0.5)

let test_quantile_does_not_mutate () =
  let xs = [| 3.0; 1.0; 2.0 |] in
  ignore (Stats.Descriptive.quantile xs 0.5);
  Alcotest.(check (array (float 0.0))) "input untouched" [| 3.0; 1.0; 2.0 |] xs

let test_empty_raises () =
  Alcotest.check_raises "mean []" (Invalid_argument "Descriptive.mean: empty")
    (fun () -> ignore (Stats.Descriptive.mean [||]));
  Alcotest.check_raises "variance [x]"
    (Invalid_argument "Descriptive.variance: need n >= 2") (fun () ->
      ignore (Stats.Descriptive.variance [| 1.0 |]))

let test_autocorrelation_lag0 () =
  close "lag 0 = 1" 1.0 (Stats.Descriptive.autocorrelation data ~lag:0)

let test_autocorrelation_alternating () =
  (* Perfectly alternating series has lag-1 autocorrelation near -1. *)
  let xs = Array.init 200 (fun i -> if i mod 2 = 0 then 1.0 else -1.0) in
  let rho = Stats.Descriptive.autocorrelation xs ~lag:1 in
  Alcotest.(check bool) "strongly negative" true (rho < -0.9)

let test_autocorrelation_constant () =
  close "constant series -> 0" 0.0
    (Stats.Descriptive.autocorrelation (Array.make 10 3.0) ~lag:1)

let test_acc_matches_two_pass () =
  let rng = Prng.Rng.create ~seed:31 in
  let xs = Array.init 5000 (fun _ -> Prng.Sampler.normal rng ~mu:2.0 ~sigma:3.0) in
  let acc = Stats.Descriptive.Acc.create () in
  Array.iter (Stats.Descriptive.Acc.add acc) xs;
  close ~tol:1e-9 "mean agrees" (Stats.Descriptive.mean xs)
    (Stats.Descriptive.Acc.mean acc);
  close ~tol:1e-9 "variance agrees" (Stats.Descriptive.variance xs)
    (Stats.Descriptive.Acc.variance acc);
  Alcotest.(check int) "count" 5000 (Stats.Descriptive.Acc.count acc)

let test_acc_merge () =
  let rng = Prng.Rng.create ~seed:32 in
  let xs = Array.init 2000 (fun _ -> Prng.Sampler.exponential rng ~rate:1.5) in
  let a = Stats.Descriptive.Acc.create () and b = Stats.Descriptive.Acc.create () in
  let whole = Stats.Descriptive.Acc.create () in
  Array.iteri
    (fun i x ->
      Stats.Descriptive.Acc.add whole x;
      if i < 700 then Stats.Descriptive.Acc.add a x
      else Stats.Descriptive.Acc.add b x)
    xs;
  let merged = Stats.Descriptive.Acc.merge a b in
  close ~tol:1e-9 "merged mean" (Stats.Descriptive.Acc.mean whole)
    (Stats.Descriptive.Acc.mean merged);
  close ~tol:1e-9 "merged variance" (Stats.Descriptive.Acc.variance whole)
    (Stats.Descriptive.Acc.variance merged);
  close ~tol:1e-6 "merged skewness" (Stats.Descriptive.Acc.skewness whole)
    (Stats.Descriptive.Acc.skewness merged);
  close ~tol:1e-6 "merged kurtosis" (Stats.Descriptive.Acc.kurtosis_excess whole)
    (Stats.Descriptive.Acc.kurtosis_excess merged);
  close "merged min" (Stats.Descriptive.Acc.min whole)
    (Stats.Descriptive.Acc.min merged);
  close "merged max" (Stats.Descriptive.Acc.max whole)
    (Stats.Descriptive.Acc.max merged)

let test_acc_merge_empty () =
  let a = Stats.Descriptive.Acc.create () in
  Stats.Descriptive.Acc.add a 5.0;
  let e = Stats.Descriptive.Acc.create () in
  let m = Stats.Descriptive.Acc.merge a e in
  Alcotest.(check int) "count preserved" 1 (Stats.Descriptive.Acc.count m);
  close "mean preserved" 5.0 (Stats.Descriptive.Acc.mean m)

let test_acc_empty_defaults () =
  let acc = Stats.Descriptive.Acc.create () in
  close "empty mean 0" 0.0 (Stats.Descriptive.Acc.mean acc);
  close "empty variance 0" 0.0 (Stats.Descriptive.Acc.variance acc);
  Alcotest.check_raises "empty min raises"
    (Invalid_argument "Descriptive.Acc.min: empty") (fun () ->
      ignore (Stats.Descriptive.Acc.min acc))

let test_acc_skewness_sign () =
  (* Exponential data: positive skew (theory: 2). *)
  let rng = Prng.Rng.create ~seed:33 in
  let acc = Stats.Descriptive.Acc.create () in
  for _ = 1 to 50_000 do
    Stats.Descriptive.Acc.add acc (Prng.Sampler.exponential rng ~rate:1.0)
  done;
  let s = Stats.Descriptive.Acc.skewness acc in
  Alcotest.(check bool) "skewness ~ 2" true (s > 1.6 && s < 2.4)

let test_summary_string () =
  let s = Stats.Descriptive.summary_to_string data in
  Alcotest.(check bool) "mentions n" true
    (String.length s > 0 && String.sub s 0 3 = "n=8")

(* qcheck properties *)
let prop_variance_nonneg =
  QCheck.Test.make ~name:"variance >= 0" ~count:200
    QCheck.(array_of_size Gen.(int_range 2 40) (float_bound_exclusive 1000.0))
    (fun xs -> Stats.Descriptive.variance xs >= 0.0)

let prop_mean_between_min_max =
  QCheck.Test.make ~name:"min <= mean <= max" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 40) (float_bound_exclusive 1000.0))
    (fun xs ->
      let m = Stats.Descriptive.mean xs in
      m >= Stats.Descriptive.minimum xs -. 1e-9
      && m <= Stats.Descriptive.maximum xs +. 1e-9)

let prop_shift_invariance_of_variance =
  QCheck.Test.make ~name:"variance shift-invariant" ~count:200
    QCheck.(array_of_size Gen.(int_range 2 40) (float_bound_exclusive 100.0))
    (fun xs ->
      let shifted = Array.map (fun x -> x +. 42.0) xs in
      Float.abs (Stats.Descriptive.variance xs -. Stats.Descriptive.variance shifted)
      < 1e-6 *. (1.0 +. Stats.Descriptive.variance xs))

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile monotone in p" ~count:200
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 40) (float_bound_exclusive 100.0))
        (pair (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)))
    (fun (xs, (p1, p2)) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.Descriptive.quantile xs lo <= Stats.Descriptive.quantile xs hi +. 1e-9)

let prop_acc_matches_arrays =
  QCheck.Test.make ~name:"Acc.mean = array mean" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 60) (float_bound_exclusive 50.0))
    (fun xs ->
      let acc = Stats.Descriptive.Acc.create () in
      Array.iter (Stats.Descriptive.Acc.add acc) xs;
      Float.abs (Stats.Descriptive.Acc.mean acc -. Stats.Descriptive.mean xs)
      < 1e-9)

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "variance" `Quick test_variance;
    Alcotest.test_case "std" `Quick test_std;
    Alcotest.test_case "min/max" `Quick test_minmax;
    Alcotest.test_case "median even" `Quick test_median_even;
    Alcotest.test_case "median odd" `Quick test_median_odd;
    Alcotest.test_case "quantile endpoints" `Quick test_quantile_endpoints;
    Alcotest.test_case "quantile interpolation" `Quick test_quantile_interpolation;
    Alcotest.test_case "quantile pure" `Quick test_quantile_does_not_mutate;
    Alcotest.test_case "empty input raises" `Quick test_empty_raises;
    Alcotest.test_case "autocorrelation lag0" `Quick test_autocorrelation_lag0;
    Alcotest.test_case "autocorrelation alternating" `Quick test_autocorrelation_alternating;
    Alcotest.test_case "autocorrelation constant" `Quick test_autocorrelation_constant;
    Alcotest.test_case "Acc matches two-pass" `Quick test_acc_matches_two_pass;
    Alcotest.test_case "Acc merge law" `Quick test_acc_merge;
    Alcotest.test_case "Acc merge with empty" `Quick test_acc_merge_empty;
    Alcotest.test_case "Acc empty defaults" `Quick test_acc_empty_defaults;
    Alcotest.test_case "Acc skewness sign" `Quick test_acc_skewness_sign;
    Alcotest.test_case "summary string" `Quick test_summary_string;
    QCheck_alcotest.to_alcotest prop_variance_nonneg;
    QCheck_alcotest.to_alcotest prop_mean_between_min_max;
    QCheck_alcotest.to_alcotest prop_shift_invariance_of_variance;
    QCheck_alcotest.to_alcotest prop_quantile_monotone;
    QCheck_alcotest.to_alcotest prop_acc_matches_arrays;
  ]
