(* Adversary: feature extraction on known inputs, dataset slicing,
   KDE-Bayes classifier behaviour, detection-rate estimation, counting. *)

let close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1.0 (Float.abs expected)
  then Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- Feature --- *)

let test_feature_mean () =
  close "mean" 2.0
    (Adversary.Feature.extract Adversary.Feature.Sample_mean ~reference:0.0
       [| 1.0; 2.0; 3.0 |])

let test_feature_variance () =
  close "variance" 1.0
    (Adversary.Feature.extract Adversary.Feature.Sample_variance ~reference:0.0
       [| 1.0; 2.0; 3.0 |])

let test_feature_entropy_known () =
  (* Four points in four distinct unit bins: H = ln 4. *)
  close "entropy" (log 4.0)
    (Adversary.Feature.extract
       (Adversary.Feature.Sample_entropy { bin_width = 1.0 })
       ~reference:0.0
       [| 0.5; 1.5; 2.5; 3.5 |])

let test_feature_entropy_concentrated () =
  close "one bin -> 0" 0.0
    (Adversary.Feature.extract
       (Adversary.Feature.Sample_entropy { bin_width = 1.0 })
       ~reference:0.0
       [| 0.1; 0.2; 0.3 |])

let test_feature_min_sizes () =
  Alcotest.(check int) "mean 1" 1
    (Adversary.Feature.min_sample_size Adversary.Feature.Sample_mean);
  Alcotest.check_raises "variance of singleton"
    (Invalid_argument "Feature.extract: sample too small") (fun () ->
      ignore
        (Adversary.Feature.extract Adversary.Feature.Sample_variance
           ~reference:0.0 [| 1.0 |]))

let test_feature_names () =
  Alcotest.(check (list string)) "names" [ "mean"; "variance"; "entropy" ]
    (List.map Adversary.Feature.name Adversary.Feature.standard_set)

(* --- Dataset --- *)

let test_slice_windows () =
  let windows = Adversary.Dataset.slice (Array.init 10 float_of_int) ~sample_size:3 in
  Alcotest.(check int) "3 full windows" 3 (Array.length windows);
  Alcotest.(check (array (float 0.0))) "first" [| 0.0; 1.0; 2.0 |] windows.(0);
  Alcotest.(check (array (float 0.0))) "last" [| 6.0; 7.0; 8.0 |] windows.(2)

let test_slice_remainder_discarded () =
  let windows = Adversary.Dataset.slice [| 1.0; 2.0 |] ~sample_size:5 in
  Alcotest.(check int) "no partial windows" 0 (Array.length windows)

let test_features_of_trace () =
  let fs =
    Adversary.Dataset.features_of_trace Adversary.Feature.Sample_mean
      ~reference:0.0 ~sample_size:2
      [| 1.0; 3.0; 5.0; 7.0 |]
  in
  Alcotest.(check (array (float 1e-12))) "window means" [| 2.0; 6.0 |] fs

let test_split_alternating () =
  let even, odd = Adversary.Dataset.split_alternating [| 0.; 1.; 2.; 3.; 4. |] in
  Alcotest.(check (array (float 0.0))) "even" [| 0.; 2.; 4. |] even;
  Alcotest.(check (array (float 0.0))) "odd" [| 1.; 3. |] odd

(* --- Classifier --- *)

let gaussian n mu sigma seed =
  let rng = Prng.Rng.create ~seed in
  Array.init n (fun _ -> Prng.Sampler.normal rng ~mu ~sigma)

let test_classifier_separable () =
  let clf =
    Adversary.Classifier.train
      ~classes:[| ("lo", gaussian 200 0.0 0.5 141); ("hi", gaussian 200 10.0 0.5 142) |]
      ()
  in
  Alcotest.(check int) "low point" 0 (Adversary.Classifier.classify clf 0.2);
  Alcotest.(check int) "high point" 1 (Adversary.Classifier.classify clf 9.5);
  Alcotest.(check string) "names" "hi" (Adversary.Classifier.class_name clf 1);
  close "equal priors" 0.5 (Adversary.Classifier.prior clf 0)

let test_classifier_posteriors_normalized () =
  let clf =
    Adversary.Classifier.train
      ~classes:[| ("a", gaussian 100 0.0 1.0 143); ("b", gaussian 100 3.0 1.0 144) |]
      ()
  in
  List.iter
    (fun x ->
      let ps = Adversary.Classifier.posteriors clf x in
      close ~tol:1e-9 "sum 1" 1.0 (Array.fold_left ( +. ) 0.0 ps);
      Array.iter (fun p -> Alcotest.(check bool) "in [0,1]" true (p >= 0.0 && p <= 1.0)) ps)
    [ -2.0; 1.5; 5.0; 100.0 ]

let test_classifier_prior_shifts_decision () =
  (* With a lopsided prior the midpoint flips to the heavy class. *)
  let classes = [| ("a", gaussian 400 0.0 1.0 145); ("b", gaussian 400 2.0 1.0 146) |] in
  let balanced = Adversary.Classifier.train ~classes () in
  let skewed = Adversary.Classifier.train ~priors:[| 0.95; 0.05 |] ~classes () in
  let midpoint = 1.0 in
  Alcotest.(check int) "skewed prior favors class 0" 0
    (Adversary.Classifier.classify skewed midpoint);
  ignore (Adversary.Classifier.classify balanced midpoint)

let test_classifier_accuracy_perfect_and_chance () =
  let clf =
    Adversary.Classifier.train
      ~classes:[| ("a", gaussian 300 0.0 0.3 147); ("b", gaussian 300 10.0 0.3 148) |]
      ()
  in
  let acc_perfect =
    Adversary.Classifier.accuracy clf
      [| (0, gaussian 100 0.0 0.3 149); (1, gaussian 100 10.0 0.3 150) |]
  in
  close ~tol:0.02 "separable -> ~1.0" 1.0 acc_perfect;
  (* Same distribution in both classes -> chance. *)
  let clf2 =
    Adversary.Classifier.train
      ~classes:[| ("a", gaussian 300 0.0 1.0 151); ("b", gaussian 300 0.0 1.0 152) |]
      ()
  in
  let acc_chance =
    Adversary.Classifier.accuracy clf2
      [| (0, gaussian 200 0.0 1.0 153); (1, gaussian 200 0.0 1.0 154) |]
  in
  Alcotest.(check bool) "indistinguishable -> ~0.5" true
    (acc_chance > 0.35 && acc_chance < 0.65)

let test_classifier_threshold_between_means () =
  let clf =
    Adversary.Classifier.train
      ~classes:[| ("a", gaussian 300 0.0 1.0 155); ("b", gaussian 300 4.0 1.0 156) |]
      ()
  in
  match Adversary.Classifier.threshold_two_class clf with
  | Some d -> Alcotest.(check bool) "threshold near midpoint" true (d > 1.0 && d < 3.0)
  | None -> Alcotest.fail "expected a threshold"

let test_classifier_multiclass () =
  let clf =
    Adversary.Classifier.train
      ~classes:
        [|
          ("a", gaussian 200 0.0 0.5 157);
          ("b", gaussian 200 5.0 0.5 158);
          ("c", gaussian 200 10.0 0.5 159);
        |]
      ()
  in
  Alcotest.(check int) "middle class" 1 (Adversary.Classifier.classify clf 5.1);
  Alcotest.(check int) "m" 3 (Adversary.Classifier.num_classes clf);
  Alcotest.check_raises "threshold needs binary"
    (Invalid_argument "Classifier.threshold_two_class: not a binary classifier")
    (fun () -> ignore (Adversary.Classifier.threshold_two_class clf))

let test_classifier_invalid () =
  Alcotest.check_raises "one class"
    (Invalid_argument "Classifier.train: need >= 2 classes") (fun () ->
      ignore (Adversary.Classifier.train ~classes:[| ("a", [| 1.0 |]) |] ()));
  Alcotest.check_raises "empty class"
    (Invalid_argument "Classifier.train: empty training set") (fun () ->
      ignore
        (Adversary.Classifier.train ~classes:[| ("a", [||]); ("b", [| 1.0 |]) |] ()));
  Alcotest.check_raises "bad priors"
    (Invalid_argument "Classifier.train: priors length mismatch") (fun () ->
      ignore
        (Adversary.Classifier.train ~priors:[| 1.0 |]
           ~classes:[| ("a", [| 1.0 |]); ("b", [| 2.0 |]) |]
           ()))

(* --- Detection --- *)

let test_detection_separable_traces () =
  (* Two synthetic PIAT traces with very different variances. *)
  let rng = Prng.Rng.create ~seed:160 in
  let trace sigma =
    Array.init 4000 (fun _ -> Prng.Sampler.normal rng ~mu:0.01 ~sigma)
  in
  let res =
    Adversary.Detection.estimate ~feature:Adversary.Feature.Sample_variance
      ~reference:0.01 ~sample_size:100
      ~classes:[| ("low", trace 1e-5); ("high", trace 5e-5) |]
      ()
  in
  Alcotest.(check bool) "high detection" true
    (res.Adversary.Detection.detection_rate > 0.95);
  Alcotest.(check bool) "threshold exists" true
    (res.Adversary.Detection.threshold <> None);
  Alcotest.(check int) "train size recorded" 20
    res.Adversary.Detection.n_train_per_class.(0)

let test_detection_identical_traces_chance () =
  let rng = Prng.Rng.create ~seed:161 in
  let trace () =
    Array.init 4000 (fun _ -> Prng.Sampler.normal rng ~mu:0.01 ~sigma:1e-5)
  in
  let res =
    Adversary.Detection.estimate ~feature:Adversary.Feature.Sample_variance
      ~reference:0.01 ~sample_size:100
      ~classes:[| ("low", trace ()); ("high", trace ()) |]
      ()
  in
  Alcotest.(check bool) "chance-level" true
    (res.Adversary.Detection.detection_rate > 0.25
    && res.Adversary.Detection.detection_rate < 0.75)

let test_detection_too_few_windows () =
  Alcotest.check_raises "too few"
    (Invalid_argument "Detection.estimate: fewer than 4 feature values in a class")
    (fun () ->
      ignore
        (Adversary.Detection.estimate ~feature:Adversary.Feature.Sample_mean
           ~reference:0.0 ~sample_size:10
           ~classes:[| ("a", Array.make 30 1.0); ("b", Array.make 100 1.0) |]
           ()))

let test_estimate_features_consistent () =
  let rng = Prng.Rng.create ~seed:162 in
  let trace sigma =
    Array.init 2000 (fun _ -> Prng.Sampler.normal rng ~mu:0.01 ~sigma)
  in
  let classes = [| ("low", trace 1e-5); ("high", trace 3e-5) |] in
  let multi =
    Adversary.Detection.estimate_features
      ~features:Adversary.Feature.standard_set ~reference:0.01 ~sample_size:50
      ~classes ()
  in
  Alcotest.(check int) "three results" 3 (List.length multi);
  let single =
    Adversary.Detection.estimate ~feature:Adversary.Feature.Sample_variance
      ~reference:0.01 ~sample_size:50 ~classes ()
  in
  let multi_var =
    List.find
      (fun (r : Adversary.Detection.result) ->
        r.Adversary.Detection.feature = Adversary.Feature.Sample_variance)
      multi
  in
  close ~tol:1e-9 "same answer both paths"
    single.Adversary.Detection.detection_rate
    multi_var.Adversary.Detection.detection_rate

(* --- Counting --- *)

let test_counting_windows () =
  let ts = [| 0.0; 0.1; 0.2; 1.1; 1.2; 2.5 |] in
  let counts = Adversary.Counting.counts_per_window ts ~window:1.0 in
  Alcotest.(check (array (float 0.0))) "counts" [| 3.0; 2.0 |] counts

let test_counting_empty () =
  Alcotest.(check (array (float 0.0))) "empty" [||]
    (Adversary.Counting.counts_per_window [||] ~window:1.0)

let test_counting_detects_rates () =
  (* Two Poisson timestamp streams at 10 vs 40 pps: trivially separable. *)
  let stream rate seed =
    let rng = Prng.Rng.create ~seed in
    let t = ref 0.0 in
    Array.init 4000 (fun _ ->
        t := !t +. Prng.Sampler.exponential rng ~rate;
        !t)
  in
  let res =
    Adversary.Counting.estimate ~window:1.0
      ~classes:[| ("low", stream 10.0 163); ("high", stream 40.0 164) |]
      ()
  in
  Alcotest.(check bool) "counting detects unpadded rates" true
    (res.Adversary.Detection.detection_rate > 0.95)

let prop_slice_total_length =
  QCheck.Test.make ~name:"slice preserves prefix content" ~count:100
    QCheck.(
      pair
        (array_of_size Gen.(int_range 0 200) (float_bound_exclusive 10.0))
        (int_range 1 20))
    (fun (xs, k) ->
      let windows = Adversary.Dataset.slice xs ~sample_size:k in
      let flat = Array.concat (Array.to_list windows) in
      let m = Array.length flat in
      m = Array.length xs / k * k
      && Array.for_all Fun.id (Array.init m (fun i -> flat.(i) = xs.(i))))

let suite =
  [
    Alcotest.test_case "feature mean" `Quick test_feature_mean;
    Alcotest.test_case "feature variance" `Quick test_feature_variance;
    Alcotest.test_case "feature entropy known" `Quick test_feature_entropy_known;
    Alcotest.test_case "feature entropy concentrated" `Quick test_feature_entropy_concentrated;
    Alcotest.test_case "feature min sizes" `Quick test_feature_min_sizes;
    Alcotest.test_case "feature names" `Quick test_feature_names;
    Alcotest.test_case "slice windows" `Quick test_slice_windows;
    Alcotest.test_case "slice remainder" `Quick test_slice_remainder_discarded;
    Alcotest.test_case "features_of_trace" `Quick test_features_of_trace;
    Alcotest.test_case "split alternating" `Quick test_split_alternating;
    Alcotest.test_case "classifier separable" `Quick test_classifier_separable;
    Alcotest.test_case "posteriors normalized" `Quick test_classifier_posteriors_normalized;
    Alcotest.test_case "prior shifts decision" `Quick test_classifier_prior_shifts_decision;
    Alcotest.test_case "accuracy perfect/chance" `Quick test_classifier_accuracy_perfect_and_chance;
    Alcotest.test_case "threshold between means" `Quick test_classifier_threshold_between_means;
    Alcotest.test_case "multiclass" `Quick test_classifier_multiclass;
    Alcotest.test_case "classifier invalid" `Quick test_classifier_invalid;
    Alcotest.test_case "detection separable" `Quick test_detection_separable_traces;
    Alcotest.test_case "detection chance level" `Quick test_detection_identical_traces_chance;
    Alcotest.test_case "detection too few windows" `Quick test_detection_too_few_windows;
    Alcotest.test_case "estimate_features consistent" `Quick test_estimate_features_consistent;
    Alcotest.test_case "counting windows" `Quick test_counting_windows;
    Alcotest.test_case "counting empty" `Quick test_counting_empty;
    Alcotest.test_case "counting detects rates" `Quick test_counting_detects_rates;
    QCheck_alcotest.to_alcotest prop_slice_total_length;
  ]
