(* FFT and spectral estimation: exact identities on known signals. *)

let close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1.0 (Float.abs expected)
  then Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let test_next_pow2 () =
  Alcotest.(check int) "1" 1 (Stats.Fourier.next_pow2 1);
  Alcotest.(check int) "2" 2 (Stats.Fourier.next_pow2 2);
  Alcotest.(check int) "3->4" 4 (Stats.Fourier.next_pow2 3);
  Alcotest.(check int) "1000->1024" 1024 (Stats.Fourier.next_pow2 1000);
  Alcotest.check_raises "0" (Invalid_argument "Fourier.next_pow2: n < 1")
    (fun () -> ignore (Stats.Fourier.next_pow2 0))

let test_fft_impulse () =
  (* delta at 0 -> flat spectrum of ones *)
  let n = 8 in
  let re = Array.make n 0.0 and im = Array.make n 0.0 in
  re.(0) <- 1.0;
  Stats.Fourier.fft ~re ~im;
  Array.iter (fun x -> close "re 1" 1.0 x) re;
  Array.iter (fun x -> close "im 0" 0.0 x) im

let test_fft_constant () =
  (* all-ones -> n at DC, 0 elsewhere *)
  let n = 16 in
  let re = Array.make n 1.0 and im = Array.make n 0.0 in
  Stats.Fourier.fft ~re ~im;
  close "DC" (float_of_int n) re.(0);
  for k = 1 to n - 1 do
    close "zero bin re" 0.0 re.(k);
    close "zero bin im" 0.0 im.(k)
  done

let test_fft_single_tone () =
  (* cos(2 pi 3 t / n) -> spikes of n/2 at bins 3 and n-3 *)
  let n = 32 in
  let re =
    Array.init n (fun t ->
        cos (2.0 *. Float.pi *. 3.0 *. float_of_int t /. float_of_int n))
  in
  let im = Array.make n 0.0 in
  Stats.Fourier.fft ~re ~im;
  close ~tol:1e-9 "bin 3" (float_of_int n /. 2.0) re.(3);
  close ~tol:1e-9 "bin n-3" (float_of_int n /. 2.0) re.(n - 3);
  close "bin 5 empty" 0.0 re.(5)

let test_fft_ifft_roundtrip () =
  let rng = Prng.Rng.create ~seed:201 in
  let n = 64 in
  let orig = Array.init n (fun _ -> Prng.Sampler.normal rng ~mu:0.0 ~sigma:1.0) in
  let re = Array.copy orig and im = Array.make n 0.0 in
  Stats.Fourier.fft ~re ~im;
  Stats.Fourier.ifft ~re ~im;
  Array.iteri (fun i x -> close ~tol:1e-9 "roundtrip" orig.(i) x) re;
  Array.iter (fun x -> close ~tol:1e-9 "imag zero" 0.0 x) im

let test_fft_parseval () =
  let rng = Prng.Rng.create ~seed:202 in
  let n = 128 in
  let xs = Array.init n (fun _ -> Prng.Sampler.normal rng ~mu:0.0 ~sigma:2.0) in
  let re = Array.copy xs and im = Array.make n 0.0 in
  Stats.Fourier.fft ~re ~im;
  let time_energy = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 xs in
  let freq_energy = ref 0.0 in
  for k = 0 to n - 1 do
    freq_energy := !freq_energy +. (re.(k) *. re.(k)) +. (im.(k) *. im.(k))
  done;
  close ~tol:1e-9 "Parseval" time_energy (!freq_energy /. float_of_int n)

let test_fft_invalid () =
  Alcotest.check_raises "not pow2"
    (Invalid_argument "Fourier.fft: length not a power of two") (fun () ->
      Stats.Fourier.fft ~re:(Array.make 6 0.0) ~im:(Array.make 6 0.0));
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Fourier.fft: length mismatch") (fun () ->
      Stats.Fourier.fft ~re:(Array.make 8 0.0) ~im:(Array.make 4 0.0))

let test_periodogram_mass () =
  (* Sum of the (two-sided-equivalent) periodogram equals the series
     energy after mean removal; check the variance connection loosely. *)
  let rng = Prng.Rng.create ~seed:203 in
  let n = 256 in
  let xs = Array.init n (fun _ -> Prng.Sampler.normal rng ~mu:5.0 ~sigma:1.0) in
  let p = Stats.Fourier.periodogram xs in
  close "DC removed" 0.0 p.(0);
  Alcotest.(check bool) "non-negative" true (Array.for_all (fun x -> x >= 0.0) p)

let test_dominant_frequency () =
  let fs = 100.0 in
  let f0 = 12.5 in
  let n = 512 in
  let xs =
    Array.init n (fun t -> sin (2.0 *. Float.pi *. f0 *. float_of_int t /. fs))
  in
  let f, power = Stats.Fourier.dominant_frequency ~sample_rate:fs xs in
  close ~tol:0.02 "tone found" f0 f;
  Alcotest.(check bool) "power positive" true (power > 0.0)

let test_autocorrelation_fft_matches_direct () =
  let rng = Prng.Rng.create ~seed:204 in
  let xs = Array.init 200 (fun _ -> Prng.Sampler.exponential rng ~rate:1.0) in
  let via_fft = Stats.Fourier.autocorrelation_fft xs in
  close "lag0" 1.0 via_fft.(0);
  List.iter
    (fun lag ->
      close ~tol:1e-9 (Printf.sprintf "lag %d" lag)
        (Stats.Descriptive.autocorrelation xs ~lag)
        via_fft.(lag))
    [ 1; 2; 5; 17 ]

let test_autocorrelation_constant_series () =
  let ac = Stats.Fourier.autocorrelation_fft (Array.make 16 3.0) in
  Array.iter (fun x -> close "zeros" 0.0 x) ac

let test_spectral_entropy_tone_vs_noise () =
  let rng = Prng.Rng.create ~seed:205 in
  let n = 256 in
  let tone =
    Array.init n (fun t -> sin (2.0 *. Float.pi *. 10.0 *. float_of_int t /. float_of_int n))
  in
  let noise = Array.init n (fun _ -> Prng.Sampler.normal rng ~mu:0.0 ~sigma:1.0) in
  let h_tone = Stats.Fourier.spectral_entropy tone in
  let h_noise = Stats.Fourier.spectral_entropy noise in
  Alcotest.(check bool) "tone is spectrally concentrated" true
    (h_tone < h_noise -. 1.0);
  Alcotest.(check bool) "both nonnegative" true (h_tone >= 0.0 && h_noise >= 0.0)

let prop_periodogram_nonneg =
  QCheck.Test.make ~name:"periodogram non-negative" ~count:100
    QCheck.(array_of_size Gen.(int_range 2 100) (float_bound_exclusive 10.0))
    (fun xs ->
      Array.for_all (fun p -> p >= -1e-12) (Stats.Fourier.periodogram xs))

let prop_autocorr_bounded =
  QCheck.Test.make ~name:"autocorrelation in [-1, 1]" ~count:100
    QCheck.(array_of_size Gen.(int_range 2 100) (float_bound_exclusive 10.0))
    (fun xs ->
      Array.for_all
        (fun r -> r >= -1.0 -. 1e-6 && r <= 1.0 +. 1e-6)
        (Stats.Fourier.autocorrelation_fft xs))

let suite =
  [
    Alcotest.test_case "next_pow2" `Quick test_next_pow2;
    Alcotest.test_case "impulse -> flat" `Quick test_fft_impulse;
    Alcotest.test_case "constant -> DC" `Quick test_fft_constant;
    Alcotest.test_case "single tone bins" `Quick test_fft_single_tone;
    Alcotest.test_case "fft/ifft roundtrip" `Quick test_fft_ifft_roundtrip;
    Alcotest.test_case "Parseval" `Quick test_fft_parseval;
    Alcotest.test_case "fft invalid" `Quick test_fft_invalid;
    Alcotest.test_case "periodogram basics" `Quick test_periodogram_mass;
    Alcotest.test_case "dominant frequency" `Quick test_dominant_frequency;
    Alcotest.test_case "autocorr fft = direct" `Quick test_autocorrelation_fft_matches_direct;
    Alcotest.test_case "autocorr constant" `Quick test_autocorrelation_constant_series;
    Alcotest.test_case "spectral entropy tone<noise" `Quick test_spectral_entropy_tone_vs_noise;
    QCheck_alcotest.to_alcotest prop_periodogram_nonneg;
    QCheck_alcotest.to_alcotest prop_autocorr_bounded;
  ]
