(* Effects-based process layer: sleep semantics, interleaving with raw
   callbacks, mailboxes, and a process-style traffic source driving the
   ordinary padding gateway. *)

let close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let test_sleep_advances_time () =
  let sim = Desim.Sim.create () in
  let log = ref [] in
  Desim.Proc.spawn sim (fun () ->
      log := ("start", Desim.Proc.now ()) :: !log;
      Desim.Proc.sleep 1.5;
      log := ("mid", Desim.Proc.now ()) :: !log;
      Desim.Proc.sleep 0.5;
      log := ("end", Desim.Proc.now ()) :: !log);
  Desim.Sim.run_until sim ~time:10.0;
  match List.rev !log with
  | [ ("start", t0); ("mid", t1); ("end", t2) ] ->
      close "t0" 0.0 t0;
      close "t1" 1.5 t1;
      close "t2" 2.0 t2
  | _ -> Alcotest.fail "wrong step sequence"

let test_sleep_partial_run () =
  let sim = Desim.Sim.create () in
  let reached = ref false in
  Desim.Proc.spawn sim (fun () ->
      Desim.Proc.sleep 5.0;
      reached := true);
  Desim.Sim.run_until sim ~time:3.0;
  Alcotest.(check bool) "still suspended" false !reached;
  Desim.Sim.run_until sim ~time:6.0;
  Alcotest.(check bool) "resumed" true !reached

let test_negative_sleep_rejected () =
  let sim = Desim.Sim.create () in
  let failed = ref false in
  Desim.Proc.spawn sim (fun () ->
      try Desim.Proc.sleep (-1.0) with Invalid_argument _ -> failed := true);
  Desim.Sim.run_until sim ~time:1.0;
  Alcotest.(check bool) "raised inside process" true !failed

let test_processes_interleave_with_callbacks () =
  let sim = Desim.Sim.create () in
  let log = ref [] in
  ignore (Desim.Sim.at sim ~time:1.0 (fun () -> log := "cb@1" :: !log));
  Desim.Proc.spawn sim (fun () ->
      Desim.Proc.sleep 0.5;
      log := "proc@0.5" :: !log;
      Desim.Proc.sleep 1.0;
      log := "proc@1.5" :: !log);
  Desim.Sim.run_until sim ~time:2.0;
  Alcotest.(check (list string)) "time-ordered interleaving"
    [ "proc@0.5"; "cb@1"; "proc@1.5" ]
    (List.rev !log)

let test_two_processes_independent () =
  let sim = Desim.Sim.create () in
  let counts = Array.make 2 0 in
  let ticker i period =
    Desim.Proc.spawn sim (fun () ->
        for _ = 1 to 10 do
          Desim.Proc.sleep period;
          counts.(i) <- counts.(i) + 1
        done)
  in
  ticker 0 1.0;
  ticker 1 0.25;
  Desim.Sim.run_until sim ~time:3.9;
  Alcotest.(check int) "slow ticker" 3 counts.(0);
  Alcotest.(check int) "fast ticker capped at loop bound" 10 counts.(1)

let test_mailbox_rendezvous () =
  let sim = Desim.Sim.create () in
  let mbox = Desim.Proc.Mailbox.create () in
  let received = ref [] in
  Desim.Proc.spawn sim (fun () ->
      for _ = 1 to 3 do
        received := Desim.Proc.Mailbox.recv mbox :: !received
      done);
  Desim.Proc.spawn sim (fun () ->
      Desim.Proc.sleep 1.0;
      Desim.Proc.Mailbox.send mbox "a";
      Desim.Proc.sleep 1.0;
      Desim.Proc.Mailbox.send mbox "b";
      Desim.Proc.Mailbox.send mbox "c");
  Desim.Sim.run_until sim ~time:5.0;
  Alcotest.(check (list string)) "in order" [ "a"; "b"; "c" ] (List.rev !received)

let test_mailbox_buffering_and_try_recv () =
  let mbox = Desim.Proc.Mailbox.create () in
  Desim.Proc.Mailbox.send mbox 1;
  Desim.Proc.Mailbox.send mbox 2;
  Alcotest.(check int) "buffered" 2 (Desim.Proc.Mailbox.length mbox);
  Alcotest.(check (option int)) "fifo" (Some 1) (Desim.Proc.Mailbox.try_recv mbox);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Desim.Proc.Mailbox.try_recv mbox);
  Alcotest.(check (option int)) "empty" None (Desim.Proc.Mailbox.try_recv mbox)

let test_mailbox_send_from_callback () =
  let sim = Desim.Sim.create () in
  let mbox = Desim.Proc.Mailbox.create () in
  let got = ref None in
  Desim.Proc.spawn sim (fun () -> got := Some (Desim.Proc.Mailbox.recv mbox));
  ignore (Desim.Sim.at sim ~time:2.0 (fun () -> Desim.Proc.Mailbox.send mbox 42));
  Desim.Sim.run_until sim ~time:3.0;
  Alcotest.(check (option int)) "delivered across styles" (Some 42) !got

let test_two_receivers_split_stream () =
  let sim = Desim.Sim.create () in
  let mbox = Desim.Proc.Mailbox.create () in
  let total = ref 0 in
  for _ = 1 to 2 do
    Desim.Proc.spawn sim (fun () ->
        for _ = 1 to 2 do
          total := !total + Desim.Proc.Mailbox.recv mbox
        done)
  done;
  Desim.Proc.spawn sim (fun () ->
      for i = 1 to 4 do
        Desim.Proc.sleep 0.1;
        Desim.Proc.Mailbox.send mbox i
      done);
  Desim.Sim.run_until sim ~time:2.0;
  Alcotest.(check int) "each message consumed once" 10 !total;
  Alcotest.(check int) "nothing left over" 0 (Desim.Proc.Mailbox.length mbox)

let test_process_style_payload_source_drives_gateway () =
  (* A CBR payload source written as a process, feeding the ordinary
     padding gateway: the two programming styles compose. *)
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:271 in
  let tap = Netsim.Tap.create sim ~dest:(fun _ -> ()) () in
  let gw =
    Padding.Gateway.create sim ~rng ~timer:(Padding.Timer.Constant 0.01)
      ~jitter:Padding.Jitter.none ~dest:(Netsim.Tap.port tap) ()
  in
  Desim.Proc.spawn sim (fun () ->
      for _ = 1 to 100 do
        Desim.Proc.sleep 0.025;
        Padding.Gateway.input gw
          (Netsim.Packet.make ~kind:Netsim.Packet.Payload ~size_bytes:500
             ~created:(Desim.Proc.now ()))
      done);
  Desim.Sim.run_until sim ~time:10.0;
  Alcotest.(check int) "payload forwarded" 100 (Padding.Gateway.payload_sent gw);
  Alcotest.(check int) "wire rate unchanged" 1000 (Padding.Gateway.fires gw)

let suite =
  [
    Alcotest.test_case "sleep advances time" `Quick test_sleep_advances_time;
    Alcotest.test_case "sleep across run_until" `Quick test_sleep_partial_run;
    Alcotest.test_case "negative sleep" `Quick test_negative_sleep_rejected;
    Alcotest.test_case "interleaves with callbacks" `Quick test_processes_interleave_with_callbacks;
    Alcotest.test_case "two processes" `Quick test_two_processes_independent;
    Alcotest.test_case "mailbox rendezvous" `Quick test_mailbox_rendezvous;
    Alcotest.test_case "mailbox buffering" `Quick test_mailbox_buffering_and_try_recv;
    Alcotest.test_case "send from callback" `Quick test_mailbox_send_from_callback;
    Alcotest.test_case "two receivers" `Quick test_two_receivers_split_stream;
    Alcotest.test_case "process source + gateway" `Quick test_process_style_payload_source_drives_gateway;
  ]
