(* Gaussian KDE: normalization, consistency, log-pdf stability. *)

let close ?(tol = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let gaussian_sample n seed =
  let rng = Prng.Rng.create ~seed in
  Array.init n (fun _ -> Prng.Sampler.normal rng ~mu:0.0 ~sigma:1.0)

let test_pdf_integrates_to_one () =
  let kde = Stats.Kde.fit (gaussian_sample 500 61) in
  let lo, hi = Stats.Kde.support kde in
  let mass = Stats.Integrate.simpson (Stats.Kde.pdf kde) ~lo ~hi in
  close ~tol:1e-4 "total mass 1" 1.0 mass

let test_pdf_positive () =
  let kde = Stats.Kde.fit [| 1.0; 2.0; 3.0 |] in
  List.iter
    (fun x -> Alcotest.(check bool) "pdf > 0" true (Stats.Kde.pdf kde x > 0.0))
    [ 0.0; 1.5; 3.0 ]

let test_single_point () =
  let kde = Stats.Kde.fit ~bandwidth:0.5 [| 2.0 |] in
  close "peak at the point"
    (Stats.Special.normal_pdf ~mu:2.0 ~sigma:0.5 2.0)
    (Stats.Kde.pdf kde 2.0)

let test_consistency_at_mode () =
  (* With many samples the KDE at 0 should approach phi(0) = 0.3989. *)
  let kde = Stats.Kde.fit (gaussian_sample 20_000 62) in
  close ~tol:0.03 "density at mode" 0.3989 (Stats.Kde.pdf kde 0.0)

let test_log_pdf_matches_pdf () =
  let kde = Stats.Kde.fit (gaussian_sample 200 63) in
  List.iter
    (fun x ->
      close ~tol:1e-9 "log pdf consistent" (log (Stats.Kde.pdf kde x))
        (Stats.Kde.log_pdf kde x))
    [ -1.0; 0.0; 0.7 ]

let test_log_pdf_deep_tail () =
  let kde = Stats.Kde.fit ~bandwidth:0.1 [| 0.0 |] in
  (* pdf underflows at x = 10 (z = 100); log_pdf must stay finite. *)
  Alcotest.(check (float 0.0)) "pdf underflows" 0.0 (Stats.Kde.pdf kde 10.0);
  Alcotest.(check bool) "log_pdf finite" true
    (Float.is_finite (Stats.Kde.log_pdf kde 10.0));
  Alcotest.(check bool) "log_pdf very negative" true
    (Stats.Kde.log_pdf kde 10.0 < -1000.0)

let test_cdf_monotone_bounds () =
  let kde = Stats.Kde.fit (gaussian_sample 300 64) in
  let lo, hi = Stats.Kde.support kde in
  close ~tol:1e-6 "cdf at -inf-ish" 0.0 (Stats.Kde.cdf kde lo);
  close ~tol:1e-6 "cdf at +inf-ish" 1.0 (Stats.Kde.cdf kde hi);
  Alcotest.(check bool) "monotone" true
    (Stats.Kde.cdf kde (-0.5) < Stats.Kde.cdf kde 0.5)

let test_silverman_positive_on_constant_data () =
  let kde = Stats.Kde.fit (Array.make 50 3.0) in
  Alcotest.(check bool) "bandwidth > 0" true (Stats.Kde.bandwidth kde > 0.0);
  Alcotest.(check bool) "pdf finite" true
    (Float.is_finite (Stats.Kde.pdf kde 3.0))

let test_explicit_bandwidth () =
  let kde = Stats.Kde.fit ~bandwidth:0.7 [| 0.0; 1.0 |] in
  close "bandwidth recorded" 0.7 (Stats.Kde.bandwidth kde);
  Alcotest.(check int) "sample size" 2 (Stats.Kde.sample_size kde)

let test_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Kde.fit: empty") (fun () ->
      ignore (Stats.Kde.fit [||]));
  Alcotest.check_raises "bad bandwidth"
    (Invalid_argument "Kde.fit: bandwidth <= 0") (fun () ->
      ignore (Stats.Kde.fit ~bandwidth:0.0 [| 1.0 |]))

let prop_pdf_nonneg =
  QCheck.Test.make ~name:"pdf >= 0 everywhere" ~count:100
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 30) (float_bound_exclusive 10.0))
        (float_bound_exclusive 20.0))
    (fun (xs, x) -> Stats.Kde.pdf (Stats.Kde.fit xs) x >= 0.0)

let prop_cdf_in_unit_interval =
  QCheck.Test.make ~name:"cdf in [0,1]" ~count:100
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 30) (float_bound_exclusive 10.0))
        (float_bound_exclusive 20.0))
    (fun (xs, x) ->
      let c = Stats.Kde.cdf (Stats.Kde.fit xs) x in
      c >= -1e-9 && c <= 1.0 +. 1e-9)

let suite =
  [
    Alcotest.test_case "pdf integrates to 1" `Quick test_pdf_integrates_to_one;
    Alcotest.test_case "pdf positive" `Quick test_pdf_positive;
    Alcotest.test_case "single point = kernel" `Quick test_single_point;
    Alcotest.test_case "consistency at mode" `Quick test_consistency_at_mode;
    Alcotest.test_case "log_pdf = log pdf" `Quick test_log_pdf_matches_pdf;
    Alcotest.test_case "log_pdf deep-tail stability" `Quick test_log_pdf_deep_tail;
    Alcotest.test_case "cdf monotone + bounds" `Quick test_cdf_monotone_bounds;
    Alcotest.test_case "degenerate data bandwidth" `Quick test_silverman_positive_on_constant_data;
    Alcotest.test_case "explicit bandwidth" `Quick test_explicit_bandwidth;
    Alcotest.test_case "invalid args" `Quick test_invalid;
    QCheck_alcotest.to_alcotest prop_pdf_nonneg;
    QCheck_alcotest.to_alcotest prop_cdf_in_unit_interval;
  ]
