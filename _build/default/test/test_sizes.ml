(* The packet-size channel: variable-size sources, tap size recording,
   size-based features, and the size-padding countermeasure. *)

let close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1.0 (Float.abs expected)
  then Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let test_tap_records_sizes () =
  let sim = Desim.Sim.create () in
  let tap = Netsim.Tap.create sim ~dest:(fun _ -> ()) () in
  List.iter
    (fun size ->
      Netsim.Tap.port tap
        (Netsim.Packet.make ~kind:Netsim.Packet.Payload ~size_bytes:size
           ~created:0.0))
    [ 100; 250; 1460 ];
  Alcotest.(check (array int)) "sizes in order" [| 100; 250; 1460 |]
    (Netsim.Tap.sizes tap);
  Netsim.Tap.clear tap;
  Alcotest.(check (array int)) "sizes cleared" [||] (Netsim.Tap.sizes tap)

let test_poisson_sized () =
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:251 in
  let sizes = ref [] in
  let _src =
    Netsim.Traffic_gen.poisson_sized sim ~rng ~rate_pps:100.0
      ~size_of:(fun rng -> 100 + Prng.Rng.int rng ~bound:900)
      ~kind:Netsim.Packet.Payload
      ~dest:(fun p -> sizes := p.Netsim.Packet.size_bytes :: !sizes)
      ()
  in
  Desim.Sim.run_until sim ~time:20.0;
  Alcotest.(check bool) "sizes in range" true
    (List.for_all (fun s -> s >= 100 && s < 1000) !sizes);
  let distinct = List.sort_uniq compare !sizes in
  Alcotest.(check bool) "sizes vary" true (List.length distinct > 50)

let test_size_padding_pads () =
  let out = ref [] in
  let port =
    Padding.Size_padding.pad_port ~target:1500
      ~dest:(fun p -> out := p.Netsim.Packet.size_bytes :: !out)
  in
  Padding.Size_padding.reset_padded_bytes ();
  port (Netsim.Packet.make ~kind:Netsim.Packet.Payload ~size_bytes:100 ~created:0.0);
  port (Netsim.Packet.make ~kind:Netsim.Packet.Dummy ~size_bytes:1500 ~created:0.0);
  Alcotest.(check (list int)) "all at target" [ 1500; 1500 ] !out;
  Alcotest.(check int) "padding accounted" 1400
    (Padding.Size_padding.padded_bytes ())

let test_size_padding_preserves_kind_and_time () =
  let seen = ref None in
  let port =
    Padding.Size_padding.pad_port ~target:1000 ~dest:(fun p -> seen := Some p)
  in
  port (Netsim.Packet.make ~kind:Netsim.Packet.Dummy ~size_bytes:1 ~created:3.5);
  match !seen with
  | Some p ->
      Alcotest.(check bool) "kind kept" true (p.Netsim.Packet.kind = Netsim.Packet.Dummy);
      close "created kept" 3.5 p.Netsim.Packet.created
  | None -> Alcotest.fail "nothing forwarded"

let test_size_padding_rejects_oversize () =
  let port = Padding.Size_padding.pad_port ~target:500 ~dest:(fun _ -> ()) in
  Alcotest.check_raises "oversize"
    (Invalid_argument "Size_padding: packet exceeds the padding target")
    (fun () ->
      port (Netsim.Packet.make ~kind:Netsim.Packet.Payload ~size_bytes:600 ~created:0.0))

let test_sizes_features () =
  close "mean size" 200.0
    (Adversary.Sizes.extract Adversary.Sizes.Mean_size [| 100; 200; 300 |]);
  close "entropy of distinct" (log 3.0)
    (Adversary.Sizes.extract Adversary.Sizes.Size_entropy [| 100; 200; 300 |]);
  close "entropy of constant" 0.0
    (Adversary.Sizes.extract Adversary.Sizes.Size_entropy [| 500; 500; 500 |]);
  Alcotest.check_raises "empty" (Invalid_argument "Sizes.extract: empty window")
    (fun () -> ignore (Adversary.Sizes.extract Adversary.Sizes.Mean_size [||]))

let test_sizes_features_of_trace () =
  let fs =
    Adversary.Sizes.features_of_trace Adversary.Sizes.Mean_size ~window:2
      [| 100; 200; 400; 400; 999 |]
  in
  Alcotest.(check (array (float 1e-9))) "window means" [| 150.0; 400.0 |] fs

let test_size_attack_and_countermeasure () =
  (* Two classes with different size mixes but identical timing. *)
  let rng = Prng.Rng.create ~seed:252 in
  let column ~bulky ~padded =
    Array.init 2000 (fun _ ->
        let raw =
          if bulky && Prng.Sampler.bernoulli rng ~p:0.5 then 1460
          else 100 + Prng.Rng.int rng ~bound:200
        in
        if padded then 1500 else raw)
  in
  let attack padded =
    let res =
      Adversary.Sizes.estimate ~kind:Adversary.Sizes.Mean_size ~window:40
        ~classes:
          [|
            ("interactive", column ~bulky:false ~padded);
            ("bulk", column ~bulky:true ~padded);
          |]
        ()
    in
    res.Adversary.Detection.detection_rate
  in
  Alcotest.(check bool) "unpadded sizes leak" true (attack false > 0.95);
  let padded_rate = attack true in
  Alcotest.(check bool) "padded sizes do not" true
    (padded_rate > 0.25 && padded_rate < 0.75)

let suite =
  [
    Alcotest.test_case "tap records sizes" `Quick test_tap_records_sizes;
    Alcotest.test_case "poisson_sized" `Quick test_poisson_sized;
    Alcotest.test_case "pad_port pads" `Quick test_size_padding_pads;
    Alcotest.test_case "pad_port preserves metadata" `Quick test_size_padding_preserves_kind_and_time;
    Alcotest.test_case "pad_port rejects oversize" `Quick test_size_padding_rejects_oversize;
    Alcotest.test_case "size features" `Quick test_sizes_features;
    Alcotest.test_case "size features of trace" `Quick test_sizes_features_of_trace;
    Alcotest.test_case "size attack + countermeasure" `Quick test_size_attack_and_countermeasure;
  ]
