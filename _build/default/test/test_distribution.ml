(* Distribution objects: pdf/cdf/quantile consistency, moments, sampling. *)

let close ?(tol = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1.0 (Float.abs expected)
  then Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let check_roundtrip d ps =
  List.iter
    (fun p ->
      close ~tol:1e-6
        (Printf.sprintf "%s: cdf(quantile(%.3f))" d.Stats.Distribution.name p)
        p
        (d.Stats.Distribution.cdf (d.Stats.Distribution.quantile p)))
    ps

let check_pdf_is_cdf_derivative d xs =
  List.iter
    (fun x ->
      let h = 1e-5 *. Float.max 1.0 (Float.abs x) in
      let numeric =
        (d.Stats.Distribution.cdf (x +. h) -. d.Stats.Distribution.cdf (x -. h))
        /. (2.0 *. h)
      in
      close ~tol:1e-3
        (Printf.sprintf "%s: pdf = dcdf at %.3f" d.Stats.Distribution.name x)
        numeric (d.Stats.Distribution.pdf x))
    xs

let check_sample_moments d n seed tol =
  let rng = Prng.Rng.create ~seed in
  let acc = Stats.Descriptive.Acc.create () in
  for _ = 1 to n do
    Stats.Descriptive.Acc.add acc (d.Stats.Distribution.sample rng)
  done;
  close ~tol
    (Printf.sprintf "%s: sample mean" d.Stats.Distribution.name)
    d.Stats.Distribution.mean
    (Stats.Descriptive.Acc.mean acc);
  close ~tol:(2.0 *. tol)
    (Printf.sprintf "%s: sample variance" d.Stats.Distribution.name)
    d.Stats.Distribution.variance
    (Stats.Descriptive.Acc.variance acc)

let ps = [ 0.01; 0.1; 0.3; 0.5; 0.7; 0.9; 0.99 ]

let test_normal () =
  let d = Stats.Distribution.normal ~mu:2.0 ~sigma:1.5 in
  check_roundtrip d ps;
  check_pdf_is_cdf_derivative d [ 0.0; 1.0; 2.0; 4.0 ];
  check_sample_moments d 100_000 71 0.02;
  close "median = mu" 2.0 (d.Stats.Distribution.quantile 0.5)

let test_uniform () =
  let d = Stats.Distribution.uniform ~lo:(-1.0) ~hi:3.0 in
  check_roundtrip d ps;
  check_sample_moments d 100_000 72 0.02;
  close "mean" 1.0 d.Stats.Distribution.mean;
  close "variance" (16.0 /. 12.0) d.Stats.Distribution.variance;
  close "pdf inside" 0.25 (d.Stats.Distribution.pdf 0.0);
  close "pdf outside" 0.0 (d.Stats.Distribution.pdf 5.0)

let test_exponential () =
  let d = Stats.Distribution.exponential ~rate:2.0 in
  check_roundtrip d ps;
  check_pdf_is_cdf_derivative d [ 0.1; 0.5; 2.0 ];
  check_sample_moments d 100_000 73 0.02;
  close "memoryless median" (log 2.0 /. 2.0) (d.Stats.Distribution.quantile 0.5)

let test_gamma () =
  let d = Stats.Distribution.gamma ~shape:3.0 ~scale:2.0 in
  check_roundtrip d ps;
  check_pdf_is_cdf_derivative d [ 1.0; 4.0; 8.0 ];
  check_sample_moments d 100_000 74 0.02;
  close "mean" 6.0 d.Stats.Distribution.mean;
  close "variance" 12.0 d.Stats.Distribution.variance

let test_gamma_small_shape () =
  let d = Stats.Distribution.gamma ~shape:0.5 ~scale:1.0 in
  check_sample_moments d 100_000 75 0.03;
  Alcotest.(check bool) "samples positive" true
    (let rng = Prng.Rng.create ~seed:76 in
     let ok = ref true in
     for _ = 1 to 1000 do
       if d.Stats.Distribution.sample rng <= 0.0 then ok := false
     done;
     !ok)

let test_chi_square () =
  let d = Stats.Distribution.chi_square ~dof:5 in
  close "mean = dof" 5.0 d.Stats.Distribution.mean;
  close "variance = 2 dof" 10.0 d.Stats.Distribution.variance;
  (* chi2(5) upper 5% critical value = 11.0705 *)
  close ~tol:1e-4 "95th percentile" 11.0705 (d.Stats.Distribution.quantile 0.95)

let test_scaled_chi_square_is_sample_variance_law () =
  (* Empirical check: the law of S^2 for normal samples of size n. *)
  let n = 8 in
  let sigma2 = 4.0 in
  let d = Stats.Distribution.scaled_chi_square ~dof:(n - 1) ~sigma2 in
  close "E[S^2] = sigma^2" sigma2 d.Stats.Distribution.mean;
  let rng = Prng.Rng.create ~seed:77 in
  let acc = Stats.Descriptive.Acc.create () in
  for _ = 1 to 40_000 do
    let xs = Array.init n (fun _ -> Prng.Sampler.normal rng ~mu:0.0 ~sigma:2.0) in
    Stats.Descriptive.Acc.add acc (Stats.Descriptive.variance xs)
  done;
  close ~tol:0.03 "simulated mean of S^2" d.Stats.Distribution.mean
    (Stats.Descriptive.Acc.mean acc);
  close ~tol:0.06 "simulated variance of S^2" d.Stats.Distribution.variance
    (Stats.Descriptive.Acc.variance acc)

let test_lognormal () =
  let d = Stats.Distribution.lognormal ~mu:0.0 ~sigma:0.5 in
  check_roundtrip d ps;
  check_sample_moments d 200_000 78 0.02;
  close "median = e^mu" 1.0 (d.Stats.Distribution.quantile 0.5)

let test_pareto () =
  let d = Stats.Distribution.pareto ~shape:2.5 ~scale:1.0 in
  check_roundtrip d ps;
  close "mean" (2.5 /. 1.5) d.Stats.Distribution.mean;
  close "cdf below scale" 0.0 (d.Stats.Distribution.cdf 0.5);
  let d1 = Stats.Distribution.pareto ~shape:0.8 ~scale:1.0 in
  Alcotest.(check bool) "infinite mean when shape <= 1" true
    (d1.Stats.Distribution.mean = Float.infinity)

let test_log_pdf_consistency () =
  List.iter
    (fun d ->
      List.iter
        (fun x ->
          let p = d.Stats.Distribution.pdf x in
          if p > 0.0 then
            close ~tol:1e-9
              (Printf.sprintf "%s log_pdf at %.2f" d.Stats.Distribution.name x)
              (log p)
              (d.Stats.Distribution.log_pdf x))
        [ 0.5; 1.0; 2.5 ])
    [
      Stats.Distribution.normal ~mu:1.0 ~sigma:1.0;
      Stats.Distribution.exponential ~rate:1.0;
      Stats.Distribution.gamma ~shape:2.0 ~scale:1.0;
      Stats.Distribution.lognormal ~mu:0.0 ~sigma:1.0;
      Stats.Distribution.pareto ~shape:2.0 ~scale:0.4;
    ]

let test_invalid_params () =
  Alcotest.check_raises "normal sigma"
    (Invalid_argument "Distribution.normal: sigma <= 0") (fun () ->
      ignore (Stats.Distribution.normal ~mu:0.0 ~sigma:0.0));
  Alcotest.check_raises "uniform order"
    (Invalid_argument "Distribution.uniform: lo >= hi") (fun () ->
      ignore (Stats.Distribution.uniform ~lo:1.0 ~hi:1.0));
  Alcotest.check_raises "gamma shape"
    (Invalid_argument "Distribution.gamma: shape <= 0") (fun () ->
      ignore (Stats.Distribution.gamma ~shape:0.0 ~scale:1.0))

let prop_quantile_cdf_gamma =
  QCheck.Test.make ~name:"gamma quantile/cdf roundtrip" ~count:60
    QCheck.(
      triple
        (float_range 0.3 20.0)
        (float_range 0.1 10.0)
        (float_range 0.01 0.99))
    (fun (shape, scale, p) ->
      let d = Stats.Distribution.gamma ~shape ~scale in
      Float.abs (d.Stats.Distribution.cdf (d.Stats.Distribution.quantile p) -. p)
      < 1e-5)

let suite =
  [
    Alcotest.test_case "normal" `Quick test_normal;
    Alcotest.test_case "uniform" `Quick test_uniform;
    Alcotest.test_case "exponential" `Quick test_exponential;
    Alcotest.test_case "gamma" `Quick test_gamma;
    Alcotest.test_case "gamma shape<1" `Quick test_gamma_small_shape;
    Alcotest.test_case "chi-square" `Quick test_chi_square;
    Alcotest.test_case "scaled chi-square = S^2 law" `Quick test_scaled_chi_square_is_sample_variance_law;
    Alcotest.test_case "lognormal" `Quick test_lognormal;
    Alcotest.test_case "pareto" `Quick test_pareto;
    Alcotest.test_case "log_pdf consistency" `Quick test_log_pdf_consistency;
    Alcotest.test_case "invalid params" `Quick test_invalid_params;
    QCheck_alcotest.to_alcotest prop_quantile_cdf_gamma;
  ]
