(* Discrete-event core: event queue ordering, clock semantics,
   cancellation, periodic trains. *)

let test_queue_orders_by_time () =
  let q = Desim.Event_queue.create () in
  List.iter (fun (t, v) -> Desim.Event_queue.push q ~time:t v)
    [ (3.0, "c"); (1.0, "a"); (2.0, "b") ];
  let pop () = match Desim.Event_queue.pop q with
    | Some (_, v) -> v
    | None -> Alcotest.fail "unexpected empty"
  in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check bool) "drained" true (Desim.Event_queue.is_empty q)

let test_queue_fifo_on_ties () =
  let q = Desim.Event_queue.create () in
  for i = 0 to 9 do
    Desim.Event_queue.push q ~time:5.0 i
  done;
  for i = 0 to 9 do
    match Desim.Event_queue.pop q with
    | Some (_, v) -> Alcotest.(check int) "insertion order" i v
    | None -> Alcotest.fail "empty"
  done

let test_queue_peek () =
  let q = Desim.Event_queue.create () in
  Alcotest.(check (option (float 0.0))) "empty peek" None
    (Desim.Event_queue.peek_time q);
  Desim.Event_queue.push q ~time:7.0 ();
  Alcotest.(check (option (float 0.0))) "peek" (Some 7.0)
    (Desim.Event_queue.peek_time q);
  Alcotest.(check int) "size" 1 (Desim.Event_queue.size q)

let test_queue_nan_rejected () =
  let q = Desim.Event_queue.create () in
  Alcotest.check_raises "NaN" (Invalid_argument "Event_queue.push: NaN time")
    (fun () -> Desim.Event_queue.push q ~time:Float.nan ())

let test_queue_heap_property_random () =
  let rng = Prng.Rng.create ~seed:91 in
  let q = Desim.Event_queue.create () in
  for _ = 1 to 10_000 do
    Desim.Event_queue.push q ~time:(Prng.Rng.float rng) ()
  done;
  let prev = ref Float.neg_infinity in
  let rec drain () =
    match Desim.Event_queue.pop q with
    | None -> ()
    | Some (t, ()) ->
        if t < !prev then Alcotest.failf "out of order: %f after %f" t !prev;
        prev := t;
        drain ()
  in
  drain ()

let test_sim_clock_advances () =
  let sim = Desim.Sim.create () in
  let seen = ref [] in
  ignore (Desim.Sim.at sim ~time:2.0 (fun () -> seen := 2 :: !seen));
  ignore (Desim.Sim.at sim ~time:1.0 (fun () -> seen := 1 :: !seen));
  Desim.Sim.run_until sim ~time:1.5;
  Alcotest.(check (list int)) "only first ran" [ 1 ] !seen;
  Alcotest.(check (float 0.0)) "clock at horizon" 1.5 (Desim.Sim.now sim);
  Desim.Sim.run_until sim ~time:3.0;
  Alcotest.(check (list int)) "both ran" [ 2; 1 ] !seen

let test_sim_past_scheduling_rejected () =
  let sim = Desim.Sim.create () in
  Desim.Sim.run_until sim ~time:5.0;
  Alcotest.check_raises "past" (Invalid_argument "Sim.at: time in the past")
    (fun () -> ignore (Desim.Sim.at sim ~time:4.0 (fun () -> ())));
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Sim.after: negative delay") (fun () ->
      ignore (Desim.Sim.after sim ~delay:(-1.0) (fun () -> ())))

let test_sim_cancellation () =
  let sim = Desim.Sim.create () in
  let ran = ref false in
  let h = Desim.Sim.at sim ~time:1.0 (fun () -> ran := true) in
  Desim.Sim.cancel h;
  Alcotest.(check bool) "marked" true (Desim.Sim.cancelled h);
  Desim.Sim.run_until sim ~time:2.0;
  Alcotest.(check bool) "never ran" false !ran

let test_sim_callbacks_can_schedule () =
  let sim = Desim.Sim.create () in
  let log = ref [] in
  ignore
    (Desim.Sim.at sim ~time:1.0 (fun () ->
         log := "outer" :: !log;
         ignore (Desim.Sim.after sim ~delay:0.5 (fun () -> log := "inner" :: !log))));
  Desim.Sim.run_until sim ~time:2.0;
  Alcotest.(check (list string)) "nested ran in order" [ "inner"; "outer" ] !log

let test_sim_same_time_cascade () =
  (* An event scheduling another at the *same* instant must run within the
     same run_until. *)
  let sim = Desim.Sim.create () in
  let count = ref 0 in
  ignore
    (Desim.Sim.at sim ~time:1.0 (fun () ->
         incr count;
         ignore (Desim.Sim.at sim ~time:1.0 (fun () -> incr count))));
  Desim.Sim.run_until sim ~time:1.0;
  Alcotest.(check int) "both ran" 2 !count

let test_every_fixed_interval () =
  let sim = Desim.Sim.create () in
  let times = ref [] in
  let h =
    Desim.Sim.every sim ~interval:(fun () -> 1.0) (fun () ->
        times := Desim.Sim.now sim :: !times)
  in
  Desim.Sim.run_until sim ~time:5.5;
  Alcotest.(check (list (float 1e-12))) "ticked at 1..5"
    [ 5.0; 4.0; 3.0; 2.0; 1.0 ] !times;
  Desim.Sim.cancel h;
  Desim.Sim.run_until sim ~time:10.0;
  Alcotest.(check int) "no ticks after cancel" 5 (List.length !times)

let test_every_random_interval_redrawn () =
  (* With a strictly increasing interval function, gaps must increase:
     proves the interval is re-drawn each period, which is what makes a
     VIT timer variable. *)
  let sim = Desim.Sim.create () in
  let step = ref 0.0 in
  let times = ref [] in
  ignore
    (Desim.Sim.every sim
       ~interval:(fun () ->
         step := !step +. 1.0;
         !step)
       (fun () -> times := Desim.Sim.now sim :: !times));
  Desim.Sim.run_until sim ~time:11.0;
  (* fires at 1, 3, 6, 10 *)
  Alcotest.(check (list (float 1e-12))) "growing gaps" [ 10.0; 6.0; 3.0; 1.0 ] !times

let test_every_start_override () =
  let sim = Desim.Sim.create () in
  let first = ref None in
  ignore
    (Desim.Sim.every sim ~start:0.25
       ~interval:(fun () -> 1.0)
       (fun () -> if !first = None then first := Some (Desim.Sim.now sim)));
  Desim.Sim.run_until sim ~time:2.0;
  Alcotest.(check (option (float 1e-12))) "first at start" (Some 0.25) !first

let test_run_all_budget () =
  let sim = Desim.Sim.create () in
  let rec loop () = ignore (Desim.Sim.after sim ~delay:1.0 loop) in
  loop ();
  Alcotest.check_raises "budget" (Failure "Sim.run_all: event budget exceeded")
    (fun () -> Desim.Sim.run_all ~max_events:100 sim)

let test_pending_count () =
  let sim = Desim.Sim.create () in
  ignore (Desim.Sim.at sim ~time:1.0 (fun () -> ()));
  ignore (Desim.Sim.at sim ~time:2.0 (fun () -> ()));
  Alcotest.(check int) "two pending" 2 (Desim.Sim.pending sim);
  Desim.Sim.run_until sim ~time:3.0;
  Alcotest.(check int) "drained" 0 (Desim.Sim.pending sim)

let prop_queue_is_sort =
  QCheck.Test.make ~name:"event queue drains as a stable sort" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 200) (float_bound_exclusive 100.0))
    (fun times ->
      let q = Desim.Event_queue.create () in
      List.iteri (fun i t -> Desim.Event_queue.push q ~time:t i) times;
      let rec drain acc =
        match Desim.Event_queue.pop q with
        | None -> List.rev acc
        | Some (t, i) -> drain ((t, i) :: acc)
      in
      let drained = drain [] in
      let expected =
        List.mapi (fun i t -> (t, i)) times
        |> List.stable_sort (fun (t1, _) (t2, _) -> compare t1 t2)
      in
      drained = expected)

let suite =
  [
    Alcotest.test_case "queue time order" `Quick test_queue_orders_by_time;
    Alcotest.test_case "queue FIFO ties" `Quick test_queue_fifo_on_ties;
    Alcotest.test_case "queue peek/size" `Quick test_queue_peek;
    Alcotest.test_case "queue rejects NaN" `Quick test_queue_nan_rejected;
    Alcotest.test_case "queue random heap property" `Quick test_queue_heap_property_random;
    Alcotest.test_case "clock advances" `Quick test_sim_clock_advances;
    Alcotest.test_case "no scheduling in the past" `Quick test_sim_past_scheduling_rejected;
    Alcotest.test_case "cancellation" `Quick test_sim_cancellation;
    Alcotest.test_case "nested scheduling" `Quick test_sim_callbacks_can_schedule;
    Alcotest.test_case "same-instant cascade" `Quick test_sim_same_time_cascade;
    Alcotest.test_case "every: fixed interval" `Quick test_every_fixed_interval;
    Alcotest.test_case "every: interval re-drawn" `Quick test_every_random_interval_redrawn;
    Alcotest.test_case "every: start override" `Quick test_every_start_override;
    Alcotest.test_case "run_all event budget" `Quick test_run_all_budget;
    Alcotest.test_case "pending count" `Quick test_pending_count;
    QCheck_alcotest.to_alcotest prop_queue_is_sort;
  ]
