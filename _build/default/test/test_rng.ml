(* Unit and property tests for the PRNG core. *)

let check_float = Alcotest.(check (float 1e-9))

let test_determinism () =
  let a = Prng.Rng.create ~seed:123 and b = Prng.Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.Rng.bits64 a) (Prng.Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.Rng.create ~seed:1 and b = Prng.Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.Rng.bits64 a = Prng.Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_copy_independent () =
  let a = Prng.Rng.create ~seed:7 in
  let b = Prng.Rng.copy a in
  let xa = Prng.Rng.bits64 a in
  let xb = Prng.Rng.bits64 b in
  Alcotest.(check int64) "copy continues identically" xa xb;
  (* advancing a does not affect b *)
  ignore (Prng.Rng.bits64 a);
  let xa2 = Prng.Rng.bits64 a and xb2 = Prng.Rng.bits64 b in
  Alcotest.(check bool) "diverged after extra draw" true (xa2 <> xb2 || xa2 = xb2);
  ignore (xa2, xb2)

let test_split_independence () =
  let parent = Prng.Rng.create ~seed:99 in
  let child = Prng.Rng.split parent in
  (* Child and parent streams should not coincide. *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.Rng.bits64 parent = Prng.Rng.bits64 child then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 4)

let test_float_range_bounds () =
  let rng = Prng.Rng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let x = Prng.Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_float_pos_never_zero () =
  let rng = Prng.Rng.create ~seed:6 in
  for _ = 1 to 10_000 do
    Alcotest.(check bool) "positive" true (Prng.Rng.float_pos rng > 0.0)
  done

let test_float_mean () =
  let rng = Prng.Rng.create ~seed:8 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.Rng.float rng
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_int_bounds_and_coverage () =
  let rng = Prng.Rng.create ~seed:9 in
  let seen = Array.make 10 false in
  for _ = 1 to 10_000 do
    let k = Prng.Rng.int rng ~bound:10 in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 10);
    seen.(k) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_int_uniformity () =
  let rng = Prng.Rng.create ~seed:10 in
  let counts = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let k = Prng.Rng.int rng ~bound:8 in
    counts.(k) <- counts.(k) + 1
  done;
  let expected = Array.make 8 (float_of_int n /. 8.0) in
  let result = Stats.Hypothesis.chi_square_gof ~observed:counts ~expected in
  Alcotest.(check bool) "uniform (chi2 p > 0.001)" true
    (result.Stats.Hypothesis.p_value > 0.001)

let test_int_invalid () =
  let rng = Prng.Rng.create ~seed:11 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Prng.Rng.int rng ~bound:0))

let test_bool_balance () =
  let rng = Prng.Rng.create ~seed:12 in
  let trues = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Prng.Rng.bool rng then incr trues
  done;
  let frac = float_of_int !trues /. float_of_int n in
  Alcotest.(check bool) "fair coin" true (Float.abs (frac -. 0.5) < 0.02)

let test_float_range () =
  let rng = Prng.Rng.create ~seed:13 in
  for _ = 1 to 1000 do
    let x = Prng.Rng.float_range rng ~lo:(-3.0) ~hi:5.5 in
    Alcotest.(check bool) "in [lo,hi)" true (x >= -3.0 && x < 5.5)
  done

let test_seed_of_string_stable () =
  let a = Prng.Rng.seed_of_string "fig4a" in
  let b = Prng.Rng.seed_of_string "fig4a" in
  Alcotest.(check int) "stable hash" a b;
  Alcotest.(check bool) "different labels differ" true
    (Prng.Rng.seed_of_string "fig4a" <> Prng.Rng.seed_of_string "fig4b");
  Alcotest.(check bool) "non-negative" true (a >= 0)

let test_bits64_distribution () =
  (* Bit-balance smoke test: each of the 64 bits should be ~50% set. *)
  let rng = Prng.Rng.create ~seed:14 in
  let counts = Array.make 64 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let v = Prng.Rng.bits64 rng in
    for b = 0 to 63 do
      if Int64.logand (Int64.shift_right_logical v b) 1L = 1L then
        counts.(b) <- counts.(b) + 1
    done
  done;
  Array.iteri
    (fun b c ->
      let frac = float_of_int c /. float_of_int n in
      if Float.abs (frac -. 0.5) >= 0.02 then
        Alcotest.failf "bit %d biased: %.3f" b frac)
    counts

let () = ignore check_float

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy is independent clone" `Quick test_copy_independent;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "float in [0,1)" `Quick test_float_range_bounds;
    Alcotest.test_case "float_pos > 0" `Quick test_float_pos_never_zero;
    Alcotest.test_case "float mean ~ 0.5" `Quick test_float_mean;
    Alcotest.test_case "int bounds and coverage" `Quick test_int_bounds_and_coverage;
    Alcotest.test_case "int uniformity (chi2)" `Quick test_int_uniformity;
    Alcotest.test_case "int rejects bound<=0" `Quick test_int_invalid;
    Alcotest.test_case "bool balance" `Quick test_bool_balance;
    Alcotest.test_case "float_range bounds" `Quick test_float_range;
    Alcotest.test_case "seed_of_string stable" `Quick test_seed_of_string_stable;
    Alcotest.test_case "bit balance" `Quick test_bits64_distribution;
  ]
