(* The adversary's real workflow is offline: dump the wire with a line
   analyzer (the paper used an Agilent J6841A), carry the capture away,
   analyze at leisure.  This example splits the attack into those two
   phases through the capture-file layer: simulate + save, then load +
   classify, with nothing shared but the files.

     dune exec examples/offline_capture.exe *)

let fmt = Format.std_formatter

let capture ~rate ~seed ~path =
  let res =
    Scenarios.System.run
      {
        Scenarios.System.default_config with
        Scenarios.System.seed;
        payload_rate_pps = rate;
      }
      ~piats:20_000
  in
  Netsim.Trace.save ~path
    ~meta:
      {
        Netsim.Trace.label = Printf.sprintf "%.0fpps CIT lab capture" rate;
        created_unix = 0.0;
      }
    res.Scenarios.System.timestamps;
  Format.fprintf fmt "  captured %d timestamps at %.0f pps -> %s@."
    (Array.length res.Scenarios.System.timestamps)
    rate path

let () =
  let dir = Filename.get_temp_dir_name () in
  let low_path = Filename.concat dir "capture_low.trace" in
  let high_path = Filename.concat dir "capture_high.trace" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> if Sys.file_exists p then Sys.remove p)
        [ low_path; high_path ])
    (fun () ->
      Format.fprintf fmt "Phase 1: capture (simulate + dump)@.";
      capture ~rate:10.0 ~seed:66_001 ~path:low_path;
      capture ~rate:40.0 ~seed:66_002 ~path:high_path;

      Format.fprintf fmt "@.Phase 2: offline analysis (load + classify)@.";
      let meta_low, ts_low = Netsim.Trace.load ~path:low_path in
      let meta_high, ts_high = Netsim.Trace.load ~path:high_path in
      Format.fprintf fmt "  loaded '%s' (%d stamps), '%s' (%d stamps)@."
        meta_low.Netsim.Trace.label (Array.length ts_low)
        meta_high.Netsim.Trace.label (Array.length ts_high);
      let classes =
        [|
          ("10pps", Netsim.Trace.piats ts_low);
          ("40pps", Netsim.Trace.piats ts_high);
        |]
      in
      List.iter
        (fun feature ->
          let r =
            Adversary.Detection.estimate ~feature
              ~reference:Scenarios.Calibration.timer_mean ~sample_size:1000
              ~classes ()
          in
          Format.fprintf fmt "  %-8s detection (n=1000): %.3f@."
            (Adversary.Feature.name feature)
            r.Adversary.Detection.detection_rate)
        Adversary.Feature.standard_set;
      Format.fprintf fmt
        "@.Same verdict as the live pipeline: the capture files alone \
         betray the payload rate.@.")
