(* Quickstart: evaluate how well link padding hides the payload rate.

   We ask one question three times: if an adversary taps the wire right
   outside the sender gateway and watches 1000 packet inter-arrival times,
   how often do they correctly guess whether the hidden payload runs at 10
   or 40 packets/s?

     dune exec examples/quickstart.exe *)

let fmt = Format.std_formatter

let () =
  Format.fprintf fmt "=== 1. CIT padding (constant 10 ms timer) ===@.";
  let cit =
    Linkpad.evaluate
      { Linkpad.default_spec with Linkpad.windows_per_class = 24 }
  in
  Linkpad.pp_report fmt cit;

  Format.fprintf fmt
    "@.=== 2. VIT padding (timer interval ~ N(10 ms, (20 us)^2)) ===@.";
  let vit =
    Linkpad.evaluate
      {
        Linkpad.default_spec with
        Linkpad.padding = Linkpad.Vit { sigma_t = 20e-6 };
        windows_per_class = 24;
      }
  in
  Linkpad.pp_report fmt vit;

  Format.fprintf fmt "@.=== 3. Design guideline ===@.";
  let sigma_t = Linkpad.recommend_sigma_t ~v_max:0.55 ~n_max:100_000 () in
  Format.fprintf fmt
    "To keep every feature's detection rate below 0.55 against an \
     adversary@.collecting up to 100k PIATs, drive the timer with sigma_T \
     >= %.1f us.@."
    (sigma_t *. 1e6);

  Format.fprintf fmt
    "@.Summary: CIT leaks (worst detection %.2f); VIT at 20 us already \
     cuts it to %.2f.@."
    cit.Linkpad.worst_detection vit.Linkpad.worst_detection
