(* Is CIT padding safe once the adversary sits behind 15 noisy routers?

   The paper's answer (Fig. 8b): no — congestion masks the leak at rush
   hour, but in the small hours the network is quiet and the variance/
   entropy features recover.  This example evaluates the WAN path at
   2 AM and 2 PM through the public API, plus the same path under VIT.

     dune exec examples/wan_monitoring.exe *)

let fmt = Format.std_formatter

let evaluate ~padding ~hour ~seed =
  let hops = Scenarios.Fig8.hops_for Scenarios.Fig8.Wan ~hour in
  Linkpad.evaluate
    {
      Linkpad.padding;
      observation = Linkpad.Across_path { hops };
      sample_size = 1000;
      windows_per_class = 12;
      seed;
    }

let () =
  Format.fprintf fmt
    "WAN path: 15 routers, 6 carrying diurnal cross traffic (OSU->TAMU \
     substitute)@.";
  List.iter
    (fun (label, hour, seed) ->
      Format.fprintf fmt "@.--- CIT, %s (per-hop utilization %.2f) ---@."
        label
        (Scenarios.Diurnal.wan_congested_utilization ~hour);
      let report = evaluate ~padding:Linkpad.Cit ~hour ~seed in
      Linkpad.pp_report fmt report)
    [ ("02:00 (quiet)", 2.0, 63_001); ("14:00 (busy)", 14.0, 63_002) ];

  Format.fprintf fmt "@.--- VIT(sigma_T = 50 us), 02:00 ---@.";
  let vit =
    evaluate ~padding:(Linkpad.Vit { sigma_t = 50e-6 }) ~hour:2.0 ~seed:63_003
  in
  Linkpad.pp_report fmt vit;
  Format.fprintf fmt
    "@.Takeaway: CIT remains detectable at 2 AM even across the WAN; VIT \
     closes the window.@."
