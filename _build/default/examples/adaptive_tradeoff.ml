(* Adaptive traffic masking: the bandwidth/secrecy trade-off.

   Timmerman-style adaptive masking (paper Section 2, ref [23]) stretches
   the padding timer when payload is light to save dummy bandwidth.  The
   paper's objection: large-scale rate variations then reach the wire, so
   even the weak sample-mean feature reads the payload rate.  This example
   measures both sides of the trade-off against CIT.

     dune exec examples/adaptive_tradeoff.exe *)

let fmt = Format.std_formatter
let sample_size = 500
let windows = 12

let collect ~adaptive ~rate ~seed =
  let cfg =
    {
      Scenarios.System.default_config with
      Scenarios.System.seed = seed;
      payload_rate_pps = rate;
    }
  in
  let piats = sample_size * windows in
  if adaptive then Scenarios.System.run_adaptive cfg ~piats
  else Scenarios.System.run cfg ~piats

let analyze ~adaptive ~label =
  let low =
    collect ~adaptive ~rate:Scenarios.Calibration.rate_low_pps ~seed:64_001
  in
  let high =
    collect ~adaptive ~rate:Scenarios.Calibration.rate_high_pps ~seed:64_002
  in
  let classes =
    [|
      ("10pps", low.Scenarios.System.piats);
      ("40pps", high.Scenarios.System.piats);
    |]
  in
  Format.fprintf fmt "@.%s@." label;
  Format.fprintf fmt "  dummy overhead: %.0f%% (low rate), %.0f%% (high rate)@."
    (low.Scenarios.System.overhead *. 100.)
    (high.Scenarios.System.overhead *. 100.);
  List.iter
    (fun feature ->
      let r =
        Adversary.Detection.estimate ~feature
          ~reference:Scenarios.Calibration.timer_mean ~sample_size ~classes ()
      in
      Format.fprintf fmt "  detection by %-8s (n=%d): %.3f@."
        (Adversary.Feature.name feature)
        sample_size r.Adversary.Detection.detection_rate)
    Adversary.Feature.standard_set

let () =
  analyze ~adaptive:false ~label:"CIT (fixed 10 ms timer):";
  analyze ~adaptive:true ~label:"Adaptive masking (10-40 ms timer band):";
  Format.fprintf fmt
    "@.Adaptive masking cuts dummy bandwidth at the low rate but hands \
     the rate to the@.adversary through the mean PIAT — exactly the \
     perfect-secrecy violation the paper@.describes for rate-reducing \
     masks.@."
