(* The attack padding exists to stop: packet counting.

   Without padding, the payload rate is readable straight off the wire by
   counting packets per second (Raymond 2001).  This example mounts that
   counting attack against (a) the unpadded stream and (b) the CIT-padded
   stream, then mounts the paper's stronger variance attack on the padded
   stream — showing why the paper needs statistical features at all.

     dune exec examples/counting_attack.exe *)

let fmt = Format.std_formatter
let window = 1.0 (* seconds per counting window *)

let collect ~padded ~rate ~seed =
  let cfg =
    {
      Scenarios.System.default_config with
      Scenarios.System.seed = seed;
      payload_rate_pps = rate;
    }
  in
  if padded then Scenarios.System.run cfg ~piats:20_000
  else Scenarios.System.run_unpadded cfg ~packets:4_000

let attack ~padded =
  let low =
    collect ~padded ~rate:Scenarios.Calibration.rate_low_pps ~seed:61_001
  in
  let high =
    collect ~padded ~rate:Scenarios.Calibration.rate_high_pps ~seed:61_002
  in
  let result =
    Adversary.Counting.estimate ~window
      ~classes:
        [|
          ("10pps", low.Scenarios.System.timestamps);
          ("40pps", high.Scenarios.System.timestamps);
        |]
      ()
  in
  result.Adversary.Detection.detection_rate

let () =
  Format.fprintf fmt "Counting attack (packets per %.0f s window):@." window;
  let unpadded = attack ~padded:false in
  (* Theory: Poisson payload makes the window counts Poisson(rate*window),
     so the exact Bayes detection rate of the counting attack is a pmf
     sum. *)
  let exact =
    Stats.Discrete.bayes_detection_two
      (Stats.Discrete.poisson
         ~mean:(Scenarios.Calibration.rate_low_pps *. window))
      (Stats.Discrete.poisson
         ~mean:(Scenarios.Calibration.rate_high_pps *. window))
      ()
  in
  Format.fprintf fmt
    "  unpadded stream : detection rate %.3f (exact Bayes: %.3f)@." unpadded
    exact;
  let padded = attack ~padded:true in
  Format.fprintf fmt "  CIT-padded      : detection rate %.3f@." padded;

  (* The padded stream defeats counting; the paper's point is that the
     second-order statistics still leak. *)
  let low = collect ~padded:true ~rate:10.0 ~seed:61_003 in
  let high = collect ~padded:true ~rate:40.0 ~seed:61_004 in
  let variance_attack =
    Adversary.Detection.estimate ~feature:Adversary.Feature.Sample_variance
      ~reference:Scenarios.Calibration.timer_mean ~sample_size:1000
      ~classes:
        [|
          ("10pps", low.Scenarios.System.piats);
          ("40pps", high.Scenarios.System.piats);
        |]
      ()
  in
  Format.fprintf fmt
    "  CIT-padded, sample-variance feature (n=1000): detection rate %.3f@."
    variance_attack.Adversary.Detection.detection_rate;
  Format.fprintf fmt
    "@.Counting: %.0f%% -> %.0f%% (padding closes the rate channel);@."
    (unpadded *. 100.) (padded *. 100.);
  Format.fprintf fmt
    "variance: %.0f%% (the residual timing channel the paper analyzes).@."
    (variance_attack.Adversary.Detection.detection_rate *. 100.)
