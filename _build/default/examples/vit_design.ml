(* Designing a VIT padding system against an adversary budget.

   Workflow a deployment engineer would follow (paper Section 6):
     1. calibrate the gateway's rate-dependent jitter offline;
     2. pick a detection-rate budget and an assumed adversary strength;
     3. solve for the smallest timer sigma_T meeting it (Theorems 2/3);
     4. validate the choice empirically against the real (simulated)
        KDE-Bayes adversary.

     dune exec examples/vit_design.exe *)

let fmt = Format.std_formatter

let () =
  Format.fprintf fmt "Step 1: offline gateway calibration@.";
  let cal = Scenarios.Calibration.measure_gateway_sigmas ~seed:62_000 () in
  Format.fprintf fmt
    "  PIAT sigma at 10 pps: %.2f us; at 40 pps: %.2f us; ratio r = %.3f@."
    (cal.Scenarios.Calibration.sigma_low *. 1e6)
    (cal.Scenarios.Calibration.sigma_high *. 1e6)
    cal.Scenarios.Calibration.r_hat;

  Format.fprintf fmt "@.Step 2/3: solve for sigma_T across budgets@.";
  let budgets = [ (0.60, 10_000); (0.55, 100_000); (0.51, 1_000_000) ] in
  let choices =
    List.map
      (fun (v_max, n_max) ->
        let req =
          {
            Analytical.Design.sigma_gw_low = cal.Scenarios.Calibration.sigma_low;
            sigma_gw_high = cal.Scenarios.Calibration.sigma_high;
            n_max;
            v_max;
          }
        in
        let sigma_t = Analytical.Design.required_sigma_t req in
        Format.fprintf fmt
          "  v <= %.2f against n <= %7d  ->  sigma_T >= %7.1f us  (dummy \
           overhead unchanged: %.0f%%)@."
          v_max n_max (sigma_t *. 1e6)
          (100.
          *. Analytical.Design.overhead_fraction
               ~payload_rate_pps:Scenarios.Calibration.rate_low_pps
               ~timer_mean:Scenarios.Calibration.timer_mean);
        (v_max, n_max, sigma_t))
      budgets
  in

  Format.fprintf fmt "@.Step 4: empirical validation of the middle choice@.";
  let v_max, n_max, sigma_t =
    match choices with _ :: c :: _ -> c | _ -> assert false
  in
  let spec =
    {
      Linkpad.default_spec with
      Linkpad.padding = Linkpad.Vit { sigma_t };
      sample_size = 2000;
      windows_per_class = 16;
      seed = 62_100;
    }
  in
  let report = Linkpad.evaluate spec in
  Linkpad.pp_report fmt report;
  Format.fprintf fmt
    "  budget was v <= %.2f at n <= %d; observed worst feature %.3f at \
     n = %d.@."
    v_max n_max report.Linkpad.worst_detection spec.Linkpad.sample_size
