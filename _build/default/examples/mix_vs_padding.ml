(* Why mixing alone does not hide traffic rates.

   A Chaum threshold mix (the starting point of the paper's related work)
   shuffles message correspondence, but its batch-flush timing tracks the
   payload rate: at 40 pps a K=8 batch fills in ~0.2 s, at 10 pps it waits
   for the timeout.  This example runs the same rate-classification attack
   against a mix and against CIT/VIT link padding, and prints the
   defender's bandwidth bill next to each.

     dune exec examples/mix_vs_padding.exe *)

let fmt = Format.std_formatter
let sample_size = 200
let windows = 24

let collect ~scheme ~rate ~seed =
  let cfg =
    {
      Scenarios.System.default_config with
      Scenarios.System.seed = seed;
      payload_rate_pps = rate;
    }
  in
  let piats = sample_size * windows in
  match scheme with
  | `Mix -> Scenarios.System.run_mix ~threshold:8 ~timeout:0.5 cfg ~piats
  | `Cit -> Scenarios.System.run cfg ~piats
  | `Vit ->
      Scenarios.System.run
        {
          cfg with
          Scenarios.System.timer =
            Padding.Timer.Normal
              { mean = Scenarios.Calibration.timer_mean; sigma = 20e-6 };
        }
        ~piats

let () =
  List.iter
    (fun (label, scheme) ->
      let low = collect ~scheme ~rate:10.0 ~seed:65_001 in
      let high = collect ~scheme ~rate:40.0 ~seed:65_002 in
      let classes =
        [| ("10pps", low.Scenarios.System.piats);
           ("40pps", high.Scenarios.System.piats) |]
      in
      Format.fprintf fmt "@.%s@." label;
      Format.fprintf fmt "  dummy overhead: %.0f%% / %.0f%% (low/high rate)@."
        (low.Scenarios.System.overhead *. 100.)
        (high.Scenarios.System.overhead *. 100.);
      List.iter
        (fun feature ->
          let r =
            Adversary.Detection.estimate ~feature
              ~reference:Scenarios.Calibration.timer_mean ~sample_size ~classes
              ()
          in
          Format.fprintf fmt "  %-8s detection (n=%d): %.3f@."
            (Adversary.Feature.name feature)
            sample_size r.Adversary.Detection.detection_rate)
        Adversary.Feature.standard_set)
    [
      ("Threshold mix (K=8, 500 ms timeout):", `Mix);
      ("CIT link padding (10 ms timer):", `Cit);
      ("VIT link padding (sigma_T = 20 us):", `Vit);
    ];
  Format.fprintf fmt
    "@.The mix is transparent to a rate adversary (its mean PIAT alone \
     gives it away);@.CIT hides the mean but leaks through variance; VIT \
     closes both channels.@."
