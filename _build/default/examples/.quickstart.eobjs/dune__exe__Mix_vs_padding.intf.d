examples/mix_vs_padding.mli:
