examples/wan_monitoring.ml: Format Linkpad List Scenarios
