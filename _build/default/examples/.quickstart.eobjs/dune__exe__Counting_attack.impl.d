examples/counting_attack.ml: Adversary Format Scenarios Stats
