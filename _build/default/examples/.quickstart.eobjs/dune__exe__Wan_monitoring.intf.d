examples/wan_monitoring.mli:
