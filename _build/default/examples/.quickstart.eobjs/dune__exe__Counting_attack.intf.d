examples/counting_attack.mli:
