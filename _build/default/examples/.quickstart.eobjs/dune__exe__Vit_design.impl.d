examples/vit_design.ml: Analytical Format Linkpad List Scenarios
