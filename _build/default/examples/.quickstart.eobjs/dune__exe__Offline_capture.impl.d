examples/offline_capture.ml: Adversary Array Filename Format Fun List Netsim Printf Scenarios Sys
