examples/adaptive_tradeoff.ml: Adversary Format List Scenarios
