examples/adaptive_tradeoff.mli:
