examples/quickstart.ml: Format Linkpad
