examples/offline_capture.mli:
