examples/vit_design.mli:
