examples/quickstart.mli:
