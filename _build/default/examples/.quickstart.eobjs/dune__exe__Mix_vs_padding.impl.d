examples/mix_vs_padding.ml: Adversary Format List Padding Scenarios
