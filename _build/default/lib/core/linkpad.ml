type padding_scheme = Cit | Vit of { sigma_t : float }

type observation_point =
  | At_sender_gateway
  | Behind_lab_router of { utilization : float }
  | Across_path of { hops : Netsim.Topology.hop_spec array }

type spec = {
  padding : padding_scheme;
  observation : observation_point;
  sample_size : int;
  windows_per_class : int;
  seed : int;
}

let default_spec =
  {
    padding = Cit;
    observation = At_sender_gateway;
    sample_size = 1000;
    windows_per_class = 40;
    seed = 42;
  }

type feature_report = {
  feature : Adversary.Feature.kind;
  empirical_detection : float;
  theoretical_detection : float;
}

type report = {
  spec : spec;
  r_hat : float;
  sigma_low : float;
  sigma_high : float;
  features : feature_report list;
  worst_detection : float;
  overhead : float;
  mean_payload_latency : float;
}

let timer_of = function
  | Cit -> Padding.Timer.Constant Scenarios.Calibration.timer_mean
  | Vit { sigma_t } ->
      if sigma_t <= 0.0 then invalid_arg "Linkpad: Vit sigma_t <= 0";
      Padding.Timer.Normal
        { mean = Scenarios.Calibration.timer_mean; sigma = sigma_t }

let topology_of = function
  | At_sender_gateway -> ([||], 0)
  | Behind_lab_router { utilization } ->
      ([| Scenarios.Fig6.hop_for_utilization ~utilization ~burst:`Poisson |], 1)
  | Across_path { hops } -> (hops, Array.length hops)

let evaluate spec =
  if spec.sample_size < 2 then invalid_arg "Linkpad.evaluate: sample_size < 2";
  if spec.windows_per_class < 4 then
    invalid_arg "Linkpad.evaluate: windows_per_class < 4";
  let hops, tap_position = topology_of spec.observation in
  let base =
    {
      Scenarios.System.default_config with
      Scenarios.System.seed = spec.seed;
      timer = timer_of spec.padding;
      hops;
      tap_position;
    }
  in
  let traces =
    Scenarios.Workload.collect_pair ~base
      ~piats:(spec.sample_size * spec.windows_per_class)
  in
  let scores =
    Scenarios.Workload.score traces
      ~features:Adversary.Feature.standard_set ~sample_size:spec.sample_size
  in
  let features =
    List.map
      (fun (s : Scenarios.Workload.scored) ->
        {
          feature = s.Scenarios.Workload.feature;
          empirical_detection = s.empirical;
          theoretical_detection = s.theory;
        })
      scores
  in
  let worst_detection =
    List.fold_left (fun acc f -> Float.max acc f.empirical_detection) 0.5 features
  in
  {
    spec;
    r_hat = traces.Scenarios.Workload.r_hat;
    sigma_low = sqrt traces.Scenarios.Workload.var_low;
    sigma_high = sqrt traces.Scenarios.Workload.var_high;
    features;
    worst_detection;
    overhead = traces.Scenarios.Workload.low.Scenarios.System.overhead;
    mean_payload_latency =
      traces.Scenarios.Workload.low.Scenarios.System.mean_payload_latency;
  }

let pp_report fmt r =
  let scheme =
    match r.spec.padding with
    | Cit -> "CIT"
    | Vit { sigma_t } -> Printf.sprintf "VIT(sigma_T=%.1fus)" (sigma_t *. 1e6)
  in
  let where =
    match r.spec.observation with
    | At_sender_gateway -> "at sender gateway"
    | Behind_lab_router { utilization } ->
        Printf.sprintf "behind lab router (util %.2f)" utilization
    | Across_path { hops } ->
        Printf.sprintf "across %d-hop path" (Array.length hops)
  in
  Format.fprintf fmt "Padding %s, adversary %s, sample size %d@." scheme where
    r.spec.sample_size;
  Format.fprintf fmt
    "  PIAT sigma: low %.3g us, high %.3g us  (r_hat = %.4f)@."
    (r.sigma_low *. 1e6) (r.sigma_high *. 1e6) r.r_hat;
  List.iter
    (fun f ->
      Format.fprintf fmt "  %-8s : empirical %.3f | theory %.3f@."
        (Adversary.Feature.name f.feature)
        f.empirical_detection f.theoretical_detection)
    r.features;
  Format.fprintf fmt
    "  worst-case detection %.3f; overhead %.1f%% dummies; mean payload \
     latency %.2f ms@."
    r.worst_detection (r.overhead *. 100.0)
    (r.mean_payload_latency *. 1e3)

let recommend_sigma_t ?(seed = 4242) ~v_max ~n_max () =
  let cal = Scenarios.Calibration.measure_gateway_sigmas ~seed () in
  Analytical.Design.required_sigma_t
    {
      Analytical.Design.sigma_gw_low = cal.Scenarios.Calibration.sigma_low;
      sigma_gw_high = cal.Scenarios.Calibration.sigma_high;
      n_max;
      v_max;
    }
