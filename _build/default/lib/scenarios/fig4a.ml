type class_stats = {
  label : string;
  n : int;
  mean : float;
  std : float;
  skewness : float;
  kurtosis_excess : float;
  jarque_bera_p : float;
  ks_normal_p : float;
}

type t = {
  low : class_stats;
  high : class_stats;
  r_hat : float;
  density_grid : (float * float * float) array;
}

(* Tests on the full trace reject tiny model deviations at huge n (the
   MA(1) correlation the mechanistic gateway induces is real, as it is on
   real hardware); a fixed-size subsample asks the paper's actual question
   — "is this bell-shaped?" — at the adversary's scale. *)
let subsample xs k =
  let n = Array.length xs in
  if n <= k then Array.copy xs
  else begin
    let step = n / k in
    Array.init k (fun i -> xs.(i * step))
  end

let stats_of ~label xs =
  let acc = Stats.Descriptive.Acc.create () in
  Array.iter (Stats.Descriptive.Acc.add acc) xs;
  let sub = subsample xs 800 in
  let mu = Stats.Descriptive.mean sub and sd = Stats.Descriptive.std sub in
  let jb = Stats.Hypothesis.jarque_bera sub in
  let ks =
    Stats.Hypothesis.ks_test sub ~cdf:(Stats.Special.normal_cdf ~mu ~sigma:sd)
  in
  {
    label;
    n = Array.length xs;
    mean = Stats.Descriptive.Acc.mean acc;
    std = Stats.Descriptive.Acc.std acc;
    skewness = Stats.Descriptive.Acc.skewness acc;
    kurtosis_excess = Stats.Descriptive.Acc.kurtosis_excess acc;
    jarque_bera_p = jb.Stats.Hypothesis.p_value;
    ks_normal_p = ks.Stats.Hypothesis.p_value;
  }

let run ?(scale = 1.0) ?(seed = 42_001) ?csv_dir fmt =
  let piats = Stdlib.max 2_000 (int_of_float (30_000.0 *. scale)) in
  let base = { System.default_config with System.seed } in
  let traces = Workload.collect_pair ~base ~piats in
  let low_piats = traces.Workload.low.System.piats in
  let high_piats = traces.Workload.high.System.piats in
  let low = stats_of ~label:Calibration.label_low low_piats in
  let high = stats_of ~label:Calibration.label_high high_piats in
  (* KDE density curves on a grid spanning both distributions. *)
  let kde_low = Stats.Kde.fit (subsample low_piats 4_000) in
  let kde_high = Stats.Kde.fit (subsample high_piats 4_000) in
  let span = 4.0 *. Float.max low.std high.std in
  let center = Calibration.timer_mean in
  let grid_points = 17 in
  let density_grid =
    Array.init grid_points (fun i ->
        let x =
          center -. span
          +. (2.0 *. span *. float_of_int i /. float_of_int (grid_points - 1))
        in
        (x, Stats.Kde.pdf kde_low x, Stats.Kde.pdf kde_high x))
  in
  let stats_table =
    Table.create ~title:"Fig 4(a): PIAT statistics, CIT, zero cross traffic"
      ~columns:
        [ "class"; "n"; "mean(ms)"; "std(us)"; "skew"; "ex.kurt"; "JB p"; "KS p" ]
  in
  List.iter
    (fun s ->
      Table.add_row stats_table
        [
          s.label;
          string_of_int s.n;
          Printf.sprintf "%.5f" (s.mean *. 1e3);
          Printf.sprintf "%.3f" (s.std *. 1e6);
          Printf.sprintf "%.3f" s.skewness;
          Printf.sprintf "%.3f" s.kurtosis_excess;
          Printf.sprintf "%.3f" s.jarque_bera_p;
          Printf.sprintf "%.3f" s.ks_normal_p;
        ])
    [ low; high ];
  Table.print stats_table fmt;
  Format.fprintf fmt "variance ratio r_hat = %.4f (sigma_h/sigma_l = %.4f)@."
    traces.Workload.r_hat (sqrt traces.Workload.r_hat);
  let density_table =
    Table.create ~title:"Fig 4(a): PIAT PDF (Gaussian KDE)"
      ~columns:[ "piat(ms)"; "density 10pps (1/ms)"; "density 40pps (1/ms)" ]
  in
  Array.iter
    (fun (x, dl, dh) ->
      Table.add_row density_table
        [
          Printf.sprintf "%.5f" (x *. 1e3);
          (* density per ms, like the paper's axis *)
          Printf.sprintf "%.4f" (dl /. 1e3);
          Printf.sprintf "%.4f" (dh /. 1e3);
        ])
    density_grid;
  Table.print density_table fmt;
  (match csv_dir with
  | Some dir -> Table.save_csv density_table ~path:(Filename.concat dir "fig4a.csv")
  | None -> ());
  { low; high; r_hat = traces.Workload.r_hat; density_grid }
