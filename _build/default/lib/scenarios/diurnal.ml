let wrap hour =
  let h = Float.rem hour 24.0 in
  if h < 0.0 then h +. 24.0 else h

let activity ~hour =
  let h = wrap hour in
  (* Minimum at 4 AM, maximum at 16:00. *)
  0.5 *. (1.0 -. cos (2.0 *. Float.pi *. (h -. 4.0) /. 24.0))

let campus_utilization ~hour = 0.02 +. (0.12 *. activity ~hour)
let wan_congested_utilization ~hour = 0.14 +. (0.34 *. activity ~hour)
let wan_light_utilization ~hour = wan_congested_utilization ~hour /. 6.0
