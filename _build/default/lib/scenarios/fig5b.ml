type point = {
  sigma_t : float;
  r : float;
  n_variance : float;
  n_entropy : float;
}

type t = {
  target : float;
  calibration : Calibration.gateway_sigmas;
  points : point list;
}

let default_sigma_ts =
  [ 1e-6; 2e-6; 5e-6; 1e-5; 2e-5; 5e-5; 1e-4; 2e-4; 5e-4; 1e-3 ]

let run ?(seed = 42_004) ?(target = 0.99) ?(sigma_ts = default_sigma_ts)
    ?calibration ?csv_dir fmt =
  if target <= 0.5 || target >= 1.0 then
    invalid_arg "Fig5b.run: target out of (0.5, 1)";
  let calibration =
    match calibration with
    | Some c -> c
    | None -> Calibration.measure_gateway_sigmas ~seed:(seed + 13) ()
  in
  let points =
    List.map
      (fun sigma_t ->
        let r =
          Analytical.Ratio.r
            (Analytical.Ratio.make ~sigma_t
               ~sigma_gw_low:calibration.Calibration.sigma_low
               ~sigma_gw_high:calibration.Calibration.sigma_high ())
        in
        {
          sigma_t;
          r;
          n_variance = Analytical.Theorems.n_for_detection_variance ~r ~p:target;
          n_entropy = Analytical.Theorems.n_for_detection_entropy ~r ~p:target;
        })
      sigma_ts
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig 5(b): theoretical sample size for %.0f%% detection vs sigma_T"
           (target *. 100.0))
      ~columns:[ "sigma_T(us)"; "r"; "n (variance)"; "n (entropy)" ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [
          Printf.sprintf "%.1f" (p.sigma_t *. 1e6);
          Printf.sprintf "%.6f" p.r;
          Printf.sprintf "%.3e" p.n_variance;
          Printf.sprintf "%.3e" p.n_entropy;
        ])
    points;
  Table.print table fmt;
  (match csv_dir with
  | Some dir -> Table.save_csv table ~path:(Filename.concat dir "fig5b.csv")
  | None -> ());
  { target; calibration; points }
