(** Time-of-day utilization profiles for the campus / WAN experiments
    (paper §5.3, Fig. 8: data collected over complete 24-hour days).

    The real traces came from the TAMU campus (March 24 2003) and the
    OSU→TAMU Internet path (March 26 2003); we substitute a smooth diurnal
    curve with the canonical enterprise shape — minimum around 4 AM,
    maximum mid-afternoon — scaled to regimes in which the padded stream's
    detectability spans the same ranges the paper reports. *)

val activity : hour:float -> float
(** Normalized activity in [0, 1]: 0 at 4 AM, 1 at 16:00, sinusoidal.
    [hour] is wrapped into [0, 24). *)

val campus_utilization : hour:float -> float
(** Per-hop utilization on the campus path: 0.02 … 0.14.  A medium-size
    enterprise network: crossover traffic has limited influence, so CIT
    detection stays high essentially all day. *)

val wan_congested_utilization : hour:float -> float
(** Utilization of the congested backbone hops on the WAN path:
    0.14 … 0.48 — heavy enough that daytime detection falls toward the
    0.5 floor while the 2 AM trough still leaks. *)

val wan_light_utilization : hour:float -> float
(** The remaining WAN hops (well-provisioned core): congested / 6. *)
