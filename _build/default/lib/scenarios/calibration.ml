let timer_mean = 0.010
let rate_low_pps = 10.0
let rate_high_pps = 40.0
let packet_size = 500
let cross_packet_size = 500
let lab_bandwidth_bps = 622e6
let default_jitter = Padding.Jitter.mechanistic ()
let label_low = "10pps"
let label_high = "40pps"

type gateway_sigmas = { sigma_low : float; sigma_high : float; r_hat : float }

let measure_gateway_sigmas ?(seed = 1009) ?(piats = 40_000) ?jitter () =
  let jitter = Option.value jitter ~default:default_jitter in
  let base =
    {
      System.default_config with
      seed;
      timer = Padding.Timer.Constant timer_mean;
      jitter;
      packet_size;
    }
  in
  let run rate seed =
    let result =
      System.run { base with payload_rate_pps = rate; seed } ~piats
    in
    Stats.Descriptive.std result.System.piats
  in
  let sigma_low = run rate_low_pps seed in
  let sigma_high = run rate_high_pps (seed + 1) in
  (* Guard against a pathological jitter model inverting the ordering. *)
  let sigma_low, sigma_high =
    if sigma_high >= sigma_low then (sigma_low, sigma_high)
    else (sigma_high, sigma_low)
  in
  {
    sigma_low;
    sigma_high;
    r_hat = sigma_high *. sigma_high /. (sigma_low *. sigma_low);
  }

let print_setup fmt =
  Format.fprintf fmt "System setup (paper Section 5):@.";
  Format.fprintf fmt "  timer interval mean E[T]     : %.1f ms@."
    (timer_mean *. 1e3);
  Format.fprintf fmt "  payload rates {w_l, w_h}     : %.0f pps, %.0f pps@."
    rate_low_pps rate_high_pps;
  Format.fprintf fmt "  priors P(w_l) = P(w_h)       : 0.5, 0.5@.";
  Format.fprintf fmt "  packet size (padded stream)  : %d bytes@." packet_size;
  Format.fprintf fmt "  lab shared link              : %.0f Mb/s@."
    (lab_bandwidth_bps /. 1e6);
  Format.fprintf fmt "  detection-rate floor         : 0.5 (random guess)@."
