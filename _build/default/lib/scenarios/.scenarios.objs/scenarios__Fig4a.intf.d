lib/scenarios/fig4a.mli: Format
