lib/scenarios/fig5a.mli: Calibration Format Padding Workload
