lib/scenarios/fig8.ml: Adversary Array Diurnal Fig6 Filename List Printf Stdlib System Table Workload
