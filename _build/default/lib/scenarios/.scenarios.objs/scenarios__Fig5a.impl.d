lib/scenarios/fig5a.ml: Adversary Analytical Calibration Filename List Padding Printf Stdlib System Table Workload
