lib/scenarios/system.ml: Array Desim Float Netsim Padding Prng
