lib/scenarios/workload.ml: Adversary Analytical Array Calibration Float List Printf Stats Stdlib System
