lib/scenarios/fig6.ml: Adversary Calibration Filename List Netsim Printf Stdlib System Table Workload
