lib/scenarios/table.ml: Float Format Fun List Printf Stdlib String
