lib/scenarios/multirate.mli: Adversary Format
