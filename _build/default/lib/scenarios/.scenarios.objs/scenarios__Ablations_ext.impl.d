lib/scenarios/ablations_ext.ml: Adversary Analytical Array Calibration Desim Float List Netsim Padding Printf Prng Stdlib System Table Workload
