lib/scenarios/table.mli: Format
