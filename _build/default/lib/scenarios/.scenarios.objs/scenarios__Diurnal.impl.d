lib/scenarios/diurnal.ml: Float
