lib/scenarios/fig4b.mli: Format Padding Workload
