lib/scenarios/fig4b.ml: Adversary Filename List Printf Stdlib System Table Workload
