lib/scenarios/diurnal.mli:
