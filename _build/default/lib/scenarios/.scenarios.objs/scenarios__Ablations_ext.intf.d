lib/scenarios/ablations_ext.mli: Format
