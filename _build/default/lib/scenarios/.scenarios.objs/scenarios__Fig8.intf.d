lib/scenarios/fig8.mli: Format Netsim Workload
