lib/scenarios/calibration.ml: Format Option Padding Stats System
