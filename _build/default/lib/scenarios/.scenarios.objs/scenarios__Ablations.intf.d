lib/scenarios/ablations.mli: Format Workload
