lib/scenarios/ablations.ml: Adversary Analytical Array Calibration Fig6 Float List Padding Printf Stats Stdlib System Table Workload
