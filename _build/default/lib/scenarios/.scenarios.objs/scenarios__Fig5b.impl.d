lib/scenarios/fig5b.ml: Analytical Calibration Filename List Printf Table
