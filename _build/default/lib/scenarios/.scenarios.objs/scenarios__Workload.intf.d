lib/scenarios/workload.mli: Adversary Stats System
