lib/scenarios/system.mli: Netsim Padding
