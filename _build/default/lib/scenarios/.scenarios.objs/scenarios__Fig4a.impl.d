lib/scenarios/fig4a.ml: Array Calibration Filename Float Format List Printf Stats Stdlib System Table Workload
