lib/scenarios/fig6.mli: Format Netsim Workload
