lib/scenarios/multirate.ml: Adversary Analytical Array Calibration Filename Fun List Printf Stats Stdlib System Table
