lib/scenarios/calibration.mli: Format Padding
