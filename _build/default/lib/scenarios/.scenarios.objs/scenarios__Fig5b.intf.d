lib/scenarios/fig5b.mli: Calibration Format
