type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;  (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: width mismatch";
  t.rows <- row :: t.rows

let fcell x =
  if Float.is_integer x && Float.abs x < 1e7 then
    Printf.sprintf "%.0f" x
  else if Float.abs x >= 1e6 || (Float.abs x < 1e-3 && x <> 0.0) then
    Printf.sprintf "%.3e" x
  else Printf.sprintf "%.4f" x

let rows_in_order t = List.rev t.rows

let print t fmt =
  let rows = rows_in_order t in
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left
          (fun acc row -> Stdlib.max acc (String.length (List.nth row i)))
          (String.length col) rows)
      t.columns
  in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let render_row cells =
    String.concat "  " (List.map2 pad cells widths)
  in
  Format.fprintf fmt "@.%s@." t.title;
  let header = render_row t.columns in
  Format.fprintf fmt "%s@." header;
  Format.fprintf fmt "%s@." (String.make (String.length header) '-');
  List.iter (fun row -> Format.fprintf fmt "%s@." (render_row row)) rows

let quote_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let line cells = String.concat "," (List.map quote_cell cells) in
  String.concat "\n" (line t.columns :: List.map line (rows_in_order t)) ^ "\n"

let save_csv t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv t))
