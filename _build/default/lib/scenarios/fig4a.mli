(** Figure 4(a): PIAT distribution of CIT-padded traffic without cross
    traffic, under the low (10 pps) and high (40 pps) payload rates.

    Reproduces the paper's three observations: both distributions are
    (almost) bell-shaped, their means coincide at τ, and the high-rate
    variance is slightly larger (r > 1) — the leak CIT cannot close. *)

type class_stats = {
  label : string;
  n : int;
  mean : float;
  std : float;
  skewness : float;
  kurtosis_excess : float;
  jarque_bera_p : float;   (** normality test on a subsample *)
  ks_normal_p : float;     (** KS against the fitted normal, subsample *)
}

type t = {
  low : class_stats;
  high : class_stats;
  r_hat : float;
  density_grid : (float * float * float) array;
      (** (PIAT seconds, KDE density low, KDE density high) — the two
          curves of the paper's panel *)
}

val run : ?scale:float -> ?seed:int -> ?csv_dir:string -> Format.formatter -> t
(** Default workload: 30 000 PIATs per class (scaled, floor 2 000).
    Prints the statistics table and a coarse density table; optionally
    writes [fig4a.csv]. *)
