type region =
  | Everywhere
  | Nowhere
  | Right_of of float
  | Left_of of float
  | Between of float * float
  | Outside of float * float

(* Class-0 region of the two-normal Bayes rule: solve
   A x^2 + B x + C >= 0 where the quadratic is
   ln p0 + ln f0 - ln p1 - ln f1. *)
let two_normal_region ~mu0 ~s0 ~mu1 ~s1 ~p0 =
  if s0 <= 0.0 || s1 <= 0.0 then invalid_arg "Bayes_numeric: sigma <= 0";
  if p0 <= 0.0 || p0 >= 1.0 then invalid_arg "Bayes_numeric: p0 out of (0,1)";
  let p1 = 1.0 -. p0 in
  let a = (1.0 /. (2.0 *. s1 *. s1)) -. (1.0 /. (2.0 *. s0 *. s0)) in
  let b = (mu0 /. (s0 *. s0)) -. (mu1 /. (s1 *. s1)) in
  let c =
    log (p0 /. p1) +. log (s1 /. s0)
    -. (mu0 *. mu0 /. (2.0 *. s0 *. s0))
    +. (mu1 *. mu1 /. (2.0 *. s1 *. s1))
  in
  if a = 0.0 then begin
    if b = 0.0 then if c >= 0.0 then Everywhere else Nowhere
    else
      let x = -.c /. b in
      if b > 0.0 then Right_of x else Left_of x
  end
  else begin
    let disc = (b *. b) -. (4.0 *. a *. c) in
    if disc <= 0.0 then if a > 0.0 then Everywhere else Nowhere
    else begin
      let sq = sqrt disc in
      let x1 = (-.b -. sq) /. (2.0 *. a) and x2 = (-.b +. sq) /. (2.0 *. a) in
      let lo = Float.min x1 x2 and hi = Float.max x1 x2 in
      if a > 0.0 then Outside (lo, hi) else Between (lo, hi)
    end
  end

let prob_region ~cdf = function
  | Everywhere -> 1.0
  | Nowhere -> 0.0
  | Right_of x -> 1.0 -. cdf x
  | Left_of x -> cdf x
  | Between (a, b) -> cdf b -. cdf a
  | Outside (a, b) -> 1.0 -. (cdf b -. cdf a)

let two_normal ~mu0 ~s0 ~mu1 ~s1 ?(p0 = 0.5) () =
  let region = two_normal_region ~mu0 ~s0 ~mu1 ~s1 ~p0 in
  let cdf0 = Stats.Special.normal_cdf ~mu:mu0 ~sigma:s0 in
  let cdf1 = Stats.Special.normal_cdf ~mu:mu1 ~sigma:s1 in
  (p0 *. prob_region ~cdf:cdf0 region)
  +. ((1.0 -. p0) *. (1.0 -. prob_region ~cdf:cdf1 region))

let sample_mean_exact ~sigma_l ~sigma_h =
  if sigma_l <= 0.0 then invalid_arg "Bayes_numeric.sample_mean_exact: sigma_l <= 0";
  if sigma_h < sigma_l then
    invalid_arg "Bayes_numeric.sample_mean_exact: sigma_h < sigma_l";
  (* Sample size scales both sigmas by 1/sqrt n and cancels. *)
  two_normal ~mu0:0.0 ~s0:sigma_l ~mu1:0.0 ~s1:sigma_h ()

let sample_variance_exact ~sigma2_l ~sigma2_h ~n =
  if n < 2 then invalid_arg "Bayes_numeric.sample_variance_exact: n < 2";
  if sigma2_l <= 0.0 then
    invalid_arg "Bayes_numeric.sample_variance_exact: sigma2_l <= 0";
  if sigma2_h < sigma2_l then
    invalid_arg "Bayes_numeric.sample_variance_exact: sigma2_h < sigma2_l";
  if sigma2_h = sigma2_l then 0.5
  else begin
    (* S^2 ~ Gamma(k, theta_i), k = (n-1)/2, theta_i = 2 sigma_i^2/(n-1).
       Likelihood ratio of same-shape gammas is monotone; the single
       crossing solves k ln(theta_h/theta_l) = d (1/theta_l - 1/theta_h). *)
    let k = float_of_int (n - 1) /. 2.0 in
    let theta_l = 2.0 *. sigma2_l /. float_of_int (n - 1) in
    let theta_h = 2.0 *. sigma2_h /. float_of_int (n - 1) in
    let d =
      k *. log (theta_h /. theta_l) /. ((1.0 /. theta_l) -. (1.0 /. theta_h))
    in
    let cdf_l = Stats.Special.gamma_p ~a:k ~x:(d /. theta_l) in
    let cdf_h = Stats.Special.gamma_p ~a:k ~x:(d /. theta_h) in
    (0.5 *. cdf_l) +. (0.5 *. (1.0 -. cdf_h))
  end

let sample_entropy_normal_approx ~sigma2_l ~sigma2_h ~n =
  if n < 1 then invalid_arg "Bayes_numeric.sample_entropy_normal_approx: n < 1";
  if sigma2_l <= 0.0 then
    invalid_arg "Bayes_numeric.sample_entropy_normal_approx: sigma2_l <= 0";
  if sigma2_h < sigma2_l then
    invalid_arg "Bayes_numeric.sample_entropy_normal_approx: sigma2_h < sigma2_l";
  let h_of s2 = 0.5 *. log (2.0 *. Float.pi *. Float.exp 1.0 *. s2) in
  let s = sqrt (1.0 /. (2.0 *. float_of_int n)) in
  two_normal ~mu0:(h_of sigma2_l) ~s0:s ~mu1:(h_of sigma2_h) ~s1:s ()

let detection_max_integral ~f0 ~f1 ?(p0 = 0.5) ~lo ~hi () =
  if p0 <= 0.0 || p0 >= 1.0 then invalid_arg "Bayes_numeric: p0 out of (0,1)";
  let p1 = 1.0 -. p0 in
  Stats.Integrate.simpson ~eps:1e-10
    (fun x -> Float.max (p0 *. f0 x) (p1 *. f1 x))
    ~lo ~hi
