(** m-ary analytics for the §6 multi-rate extension.

    With m payload rates the PIAT variances order as
    σ²₁ < σ²₂ < … < σ²_m, and the sample-variance feature's class laws are
    same-shape gammas — a monotone-likelihood-ratio family, so the m-ary
    Bayes regions are intervals split at the adjacent-pair likelihood
    crossings.  That makes the exact m-ary detection rate a finite sum of
    regularized incomplete gammas. *)

val pairwise_r : sigma2s:float array -> float array array
(** [r.(i).(j)] = σ²_max/σ²_min for classes i, j (diagonal 1).  Input
    variances must be positive; order free. *)

val thresholds_variance : sigma2s:float array -> n:int -> float array
(** The m−1 adjacent decision thresholds for the sample-variance feature
    at sample size [n >= 2]; input must be strictly increasing and
    positive.  Thresholds are strictly increasing and interleave the
    class variances. *)

val mary_variance_exact : sigma2s:float array -> n:int -> float
(** Exact equal-prior m-ary Bayes detection rate for the sample-variance
    feature.  Reduces to {!Bayes_numeric.sample_variance_exact} at m = 2.
    Requires m >= 2, strictly increasing positive variances. *)

val mary_max_integral :
  pdfs:(float -> float) array -> lo:float -> hi:float -> float
(** Numeric equal-prior m-ary Bayes detection rate
    (1/m)∫ max_i f_i over [lo, hi] — the oracle for arbitrary feature
    laws (used for the mean feature's nested normals). *)

val confusion_variance_exact :
  sigma2s:float array -> n:int -> float array array
(** [c.(truth).(decision)]: exact probability that a sample from class
    [truth] lands in class [decision]'s interval; rows sum to 1. *)
