(** The variance ratio r (paper eq. 16) — the single quantity every
    closed-form detection rate depends on:

    r = (σ_T² + σ_net² + σ²_gw,h) / (σ_T² + σ_net² + σ²_gw,l) ≥ 1.

    All inputs are standard deviations in seconds. *)

type components = {
  sigma_t : float;       (** timer interval σ_T; 0 for CIT *)
  sigma_net : float;     (** network disturbance σ_net; 0 at the gateway *)
  sigma_gw_low : float;  (** gateway jitter σ_gw under the low rate *)
  sigma_gw_high : float; (** gateway jitter σ_gw under the high rate *)
}

val make :
  ?sigma_t:float ->
  ?sigma_net:float ->
  sigma_gw_low:float ->
  sigma_gw_high:float ->
  unit ->
  components
(** [sigma_t] and [sigma_net] default to 0 (CIT, tap at the gateway).
    All values must be >= 0 and [sigma_gw_high >= sigma_gw_low > 0]. *)

val r : components -> float
(** The ratio; always >= 1 by the constructor's constraints. *)

val r_of_variances : var_low:float -> var_high:float -> float
(** Direct ratio of measured PIAT variances (>= each other, > 0). *)

val sigma_low : components -> float
(** √(σ_T² + σ_net² + σ²_gw,l) — the composed PIAT σ under the low rate. *)

val sigma_high : components -> float
