(** Closed-form detection-rate estimates — the paper's Theorems 1–3.

    All functions take the variance ratio [r >= 1] (see {!Ratio}) and, where
    relevant, the adversary's sample size [n].  Detection rates are
    probabilities in [0.5, 1] for the two-equiprobable-rate system.

    Theorem 1 note: the printed formula (18) in the available text,
    v ≈ 1 − 1/(√2(1/√r + √r)), contradicts the theorem's own stated
    properties (it gives 0.646 at r = 1 where the paper says 0.5), so the
    transcription is corrupt.  {!v_mean} therefore implements the *exact*
    Bayes detection rate between the two equal-mean normal laws of the
    sample mean — v = Φ(a) − Φ(a/√r) + ½ with a = √(r ln r/(r−1)) — which
    has every property Theorem 1 claims: independent of n, increasing in r,
    v(1) = ½.  The printed form is kept as {!v_mean_paper_printed} for
    reference. *)

val v_mean : r:float -> float
(** Exact sample-mean detection rate; independent of sample size. *)

val v_mean_paper_printed : r:float -> float
(** The (corrupt) printed approximation 1 − 1/(√2(1/√r + √r)), for
    comparison tables only. *)

val c_variance : r:float -> float
(** C_Y of eq. (21); +∞ at r = 1.  Requires [r >= 1]. *)

val v_variance : r:float -> n:int -> float
(** Theorem 2: max(1 − C_Y/(n−1), 0.5).  Requires [n >= 2]. *)

val c_entropy : r:float -> float
(** C_H̃ of eq. (23); +∞ at r = 1.  Requires [r >= 1]. *)

val v_entropy : r:float -> n:int -> float
(** Theorem 3: max(1 − C_H̃/n, 0.5).  Requires [n >= 1]. *)

val n_for_detection_variance : r:float -> p:float -> float
(** Smallest (real-valued) sample size achieving detection rate [p] by
    sample variance: C_Y/(1−p) + 1.  [0.5 <= p < 1]; +∞ at r = 1. *)

val n_for_detection_entropy : r:float -> p:float -> float
(** Same for sample entropy: C_H̃/(1−p). *)

val decision_threshold_variance : sigma2_l:float -> sigma2_h:float -> float
(** The asymptotic Bayes threshold d between the two sample-variance laws:
    d = σ_h² ln r / (r − 1), lying strictly between σ_l² and σ_h².
    Requires [0 < sigma2_l < sigma2_h]. *)
