type requirement = {
  sigma_gw_low : float;
  sigma_gw_high : float;
  n_max : int;
  v_max : float;
}

let validate req =
  if req.sigma_gw_low <= 0.0 then invalid_arg "Design: sigma_gw_low <= 0";
  if req.sigma_gw_high < req.sigma_gw_low then
    invalid_arg "Design: sigma_gw_high < sigma_gw_low";
  if req.n_max < 2 then invalid_arg "Design: n_max < 2";
  if req.v_max <= 0.5 || req.v_max >= 1.0 then
    invalid_arg "Design: v_max out of (0.5, 1)"

let worst_feature_v ~r ~n =
  let v_var = Theorems.v_variance ~r ~n in
  let v_ent = Theorems.v_entropy ~r ~n in
  let v_mean = Theorems.v_mean ~r in
  Float.max v_var (Float.max v_ent v_mean)

let r_of_sigma_t req sigma_t =
  Ratio.r
    (Ratio.make ~sigma_t ~sigma_gw_low:req.sigma_gw_low
       ~sigma_gw_high:req.sigma_gw_high ())

let required_sigma_t req =
  validate req;
  let v_at sigma_t = worst_feature_v ~r:(r_of_sigma_t req sigma_t) ~n:req.n_max in
  if v_at 0.0 <= req.v_max then 0.0
  else begin
    (* Find an upper bracket by doubling; v is decreasing in sigma_t and
       tends to 0.5 < v_max, so this terminates. *)
    let hi = ref req.sigma_gw_high in
    while v_at !hi > req.v_max do
      hi := !hi *. 2.0
    done;
    let root =
      Stats.Rootfind.bisect ~eps:1e-12 (fun s -> v_at s -. req.v_max) ~lo:0.0
        ~hi:!hi
    in
    (* The midpoint can sit a hair on the violating side; return a value
       that provably satisfies the budget. *)
    let rec ensure s step k =
      if k > 100 || v_at s <= req.v_max then s
      else ensure (s *. (1.0 +. step)) (step *. 2.0) (k + 1)
    in
    ensure root 1e-12 0
  end

let achievable_sample_size ~sigma_t ~req =
  validate req;
  if sigma_t < 0.0 then invalid_arg "Design: sigma_t < 0";
  let r = r_of_sigma_t req sigma_t in
  if r <= 1.0 then Float.infinity
  else
    let n_var = Theorems.n_for_detection_variance ~r ~p:req.v_max in
    let n_ent = Theorems.n_for_detection_entropy ~r ~p:req.v_max in
    (* The adversary uses whichever feature needs fewer samples. *)
    Float.min n_var n_ent

let overhead_fraction ~payload_rate_pps ~timer_mean =
  if payload_rate_pps < 0.0 then invalid_arg "Design: payload_rate < 0";
  if timer_mean <= 0.0 then invalid_arg "Design: timer_mean <= 0";
  Float.max 0.0 (Float.min 1.0 (1.0 -. (payload_rate_pps *. timer_mean)))
