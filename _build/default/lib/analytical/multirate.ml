let check_sigma2s sigma2s =
  let m = Array.length sigma2s in
  if m < 2 then invalid_arg "Multirate: need >= 2 classes";
  Array.iter
    (fun v -> if v <= 0.0 then invalid_arg "Multirate: variance <= 0")
    sigma2s

let check_increasing sigma2s =
  check_sigma2s sigma2s;
  for i = 0 to Array.length sigma2s - 2 do
    if sigma2s.(i + 1) <= sigma2s.(i) then
      invalid_arg "Multirate: variances must be strictly increasing"
  done

let pairwise_r ~sigma2s =
  check_sigma2s sigma2s;
  let m = Array.length sigma2s in
  Array.init m (fun i ->
      Array.init m (fun j ->
          let a = sigma2s.(i) and b = sigma2s.(j) in
          Float.max a b /. Float.min a b))

(* Crossing of the same-shape gamma laws of S^2 for adjacent classes:
   identical to the two-class threshold with those variances. *)
let thresholds_variance ~sigma2s ~n =
  check_increasing sigma2s;
  if n < 2 then invalid_arg "Multirate: n < 2";
  Array.init
    (Array.length sigma2s - 1)
    (fun i ->
      Theorems.decision_threshold_variance ~sigma2_l:sigma2s.(i)
        ~sigma2_h:sigma2s.(i + 1))

let gamma_cdf ~sigma2 ~n x =
  let k = float_of_int (n - 1) /. 2.0 in
  let theta = 2.0 *. sigma2 /. float_of_int (n - 1) in
  if x <= 0.0 then 0.0 else Stats.Special.gamma_p ~a:k ~x:(x /. theta)

let confusion_variance_exact ~sigma2s ~n =
  let thresholds = thresholds_variance ~sigma2s ~n in
  let m = Array.length sigma2s in
  Array.init m (fun truth ->
      Array.init m (fun decision ->
          let lo = if decision = 0 then 0.0 else thresholds.(decision - 1) in
          let cdf_lo = gamma_cdf ~sigma2:sigma2s.(truth) ~n lo in
          let cdf_hi =
            if decision = m - 1 then 1.0
            else gamma_cdf ~sigma2:sigma2s.(truth) ~n thresholds.(decision)
          in
          Float.max 0.0 (cdf_hi -. cdf_lo)))

let mary_variance_exact ~sigma2s ~n =
  let confusion = confusion_variance_exact ~sigma2s ~n in
  let m = Array.length sigma2s in
  let acc = ref 0.0 in
  for i = 0 to m - 1 do
    acc := !acc +. confusion.(i).(i)
  done;
  !acc /. float_of_int m

let mary_max_integral ~pdfs ~lo ~hi =
  let m = Array.length pdfs in
  if m < 2 then invalid_arg "Multirate: need >= 2 pdfs";
  Stats.Integrate.simpson ~eps:1e-10
    (fun x -> Array.fold_left (fun acc f -> Float.max acc (f x)) 0.0 pdfs)
    ~lo ~hi
  /. float_of_int m
