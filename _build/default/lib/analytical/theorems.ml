let check_r r = if r < 1.0 then invalid_arg "Theorems: r < 1"

let phi x = Stats.Special.normal_cdf ~mu:0.0 ~sigma:1.0 x

let v_mean ~r =
  check_r r;
  if r = 1.0 then 0.5
  else
    (* Equal-mean normals N(mu, s_l^2), N(mu, s_h^2), equal priors: the
       Bayes regions are |x - mu| <= d vs > d with
       d^2 = s_l^2 * r ln r / (r - 1); a = d / s_l. *)
    let a = sqrt (r *. log r /. (r -. 1.0)) in
    phi a -. phi (a /. sqrt r) +. 0.5

let v_mean_paper_printed ~r =
  check_r r;
  1.0 -. (1.0 /. (sqrt 2.0 *. ((1.0 /. sqrt r) +. sqrt r)))

let c_variance ~r =
  check_r r;
  if r = 1.0 then Float.infinity
  else
    let lr = log r in
    let a = 1.0 -. (lr /. (r -. 1.0)) in
    let b = (r /. (r -. 1.0) *. lr) -. 1.0 in
    (1.0 /. (2.0 *. a *. a)) +. (1.0 /. (2.0 *. b *. b))

let v_variance ~r ~n =
  if n < 2 then invalid_arg "Theorems.v_variance: n < 2";
  let c = c_variance ~r in
  Float.max (1.0 -. (c /. float_of_int (n - 1))) 0.5

let c_entropy ~r =
  check_r r;
  if r = 1.0 then Float.infinity
  else
    let lr = log r in
    let a = log (r /. (r -. 1.0) *. lr) in
    let b = log ((r -. 1.0) /. lr) in
    (1.0 /. (2.0 *. a *. a)) +. (1.0 /. (2.0 *. b *. b))

let v_entropy ~r ~n =
  if n < 1 then invalid_arg "Theorems.v_entropy: n < 1";
  let c = c_entropy ~r in
  Float.max (1.0 -. (c /. float_of_int n)) 0.5

let check_p p =
  if p < 0.5 || p >= 1.0 then invalid_arg "Theorems: p out of [0.5, 1)"

let n_for_detection_variance ~r ~p =
  check_p p;
  let c = c_variance ~r in
  if Float.is_finite c then (c /. (1.0 -. p)) +. 1.0 else Float.infinity

let n_for_detection_entropy ~r ~p =
  check_p p;
  let c = c_entropy ~r in
  if Float.is_finite c then c /. (1.0 -. p) else Float.infinity

let decision_threshold_variance ~sigma2_l ~sigma2_h =
  if sigma2_l <= 0.0 then invalid_arg "Theorems.decision_threshold_variance: sigma2_l <= 0";
  if sigma2_h <= sigma2_l then
    invalid_arg "Theorems.decision_threshold_variance: sigma2_h <= sigma2_l";
  let r = sigma2_h /. sigma2_l in
  sigma2_h *. log r /. (r -. 1.0)
