lib/analytical/bounds.mli:
