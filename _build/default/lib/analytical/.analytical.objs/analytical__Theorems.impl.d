lib/analytical/theorems.ml: Float Stats
