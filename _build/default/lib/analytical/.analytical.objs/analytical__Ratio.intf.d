lib/analytical/ratio.mli:
