lib/analytical/bounds.ml: Float
