lib/analytical/bayes_numeric.ml: Float Stats
