lib/analytical/multirate.mli:
