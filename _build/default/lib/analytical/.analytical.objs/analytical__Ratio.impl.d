lib/analytical/ratio.ml:
