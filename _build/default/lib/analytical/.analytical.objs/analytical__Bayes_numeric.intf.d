lib/analytical/bayes_numeric.mli:
