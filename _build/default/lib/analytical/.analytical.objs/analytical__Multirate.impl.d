lib/analytical/multirate.ml: Array Float Stats Theorems
