lib/analytical/design.ml: Float Ratio Stats Theorems
