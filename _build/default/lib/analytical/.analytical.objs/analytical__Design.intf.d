lib/analytical/design.mli:
