lib/analytical/theorems.mli:
