type bracket = { lower : float; upper : float }

let bhattacharyya_normal ~mu0 ~s0 ~mu1 ~s1 =
  if s0 <= 0.0 || s1 <= 0.0 then invalid_arg "Bounds: sigma <= 0";
  let v0 = s0 *. s0 and v1 = s1 *. s1 in
  let dmu = mu0 -. mu1 in
  let d_b =
    (0.25 *. dmu *. dmu /. (v0 +. v1))
    +. (0.5 *. log ((v0 +. v1) /. (2.0 *. s0 *. s1)))
  in
  exp (-.d_b)

let bhattacharyya_gamma_same_shape ~shape ~scale0 ~scale1 =
  if shape <= 0.0 then invalid_arg "Bounds: shape <= 0";
  if scale0 <= 0.0 || scale1 <= 0.0 then invalid_arg "Bounds: scale <= 0";
  (2.0 *. sqrt (scale0 *. scale1) /. (scale0 +. scale1)) ** shape

let kl_normal ~mu0 ~s0 ~mu1 ~s1 =
  if s0 <= 0.0 || s1 <= 0.0 then invalid_arg "Bounds: sigma <= 0";
  let v0 = s0 *. s0 and v1 = s1 *. s1 in
  let dmu = mu1 -. mu0 in
  log (s1 /. s0) +. ((v0 +. (dmu *. dmu)) /. (2.0 *. v1)) -. 0.5

let detection_bracket_of_rho rho =
  if rho < 0.0 || rho > 1.0 +. 1e-12 then
    invalid_arg "Bounds: rho out of [0, 1]";
  let rho = Float.min rho 1.0 in
  let err_upper = rho /. 2.0 in
  let err_lower = 0.5 *. (1.0 -. sqrt (1.0 -. (rho *. rho))) in
  { lower = 1.0 -. err_upper; upper = 1.0 -. err_lower }

let sample_mean_bracket ~sigma_l ~sigma_h =
  if sigma_l <= 0.0 then invalid_arg "Bounds: sigma_l <= 0";
  if sigma_h < sigma_l then invalid_arg "Bounds: sigma_h < sigma_l";
  (* Equal means; any common sample size rescales both sigmas and cancels
     out of rho. *)
  detection_bracket_of_rho
    (bhattacharyya_normal ~mu0:0.0 ~s0:sigma_l ~mu1:0.0 ~s1:sigma_h)

let sample_variance_bracket ~sigma2_l ~sigma2_h ~n =
  if n < 2 then invalid_arg "Bounds: n < 2";
  if sigma2_l <= 0.0 then invalid_arg "Bounds: sigma2_l <= 0";
  if sigma2_h < sigma2_l then invalid_arg "Bounds: sigma2_h < sigma2_l";
  let k = float_of_int (n - 1) /. 2.0 in
  let theta_l = 2.0 *. sigma2_l /. float_of_int (n - 1) in
  let theta_h = 2.0 *. sigma2_h /. float_of_int (n - 1) in
  detection_bracket_of_rho
    (bhattacharyya_gamma_same_shape ~shape:k ~scale0:theta_l ~scale1:theta_h)
