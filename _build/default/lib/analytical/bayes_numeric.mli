(** Exact/numeric Bayes detection rates — the oracle the closed forms
    approximate (paper Fig. 2 and eq. 5–7).

    Detection rate of the Bayes rule between class-conditional densities
    f_0, f_1 with priors p_0, p_1 is v = ∫ max(p_0 f_0, p_1 f_1) dx. *)

type region =
  | Everywhere
  | Nowhere
  | Right_of of float            (** \[x, ∞) *)
  | Left_of of float             (** (−∞, x\] *)
  | Between of float * float
  | Outside of float * float     (** complement of (a, b) *)

val two_normal_region :
  mu0:float -> s0:float -> mu1:float -> s1:float -> p0:float -> region
(** Class-0 decision region {x : p0 f0(x) >= p1 f1(x)} for two normals —
    the log-likelihood ratio is quadratic, so the region is exact.
    [s0, s1 > 0], [p0 in (0,1)]. *)

val two_normal :
  mu0:float -> s0:float -> mu1:float -> s1:float -> ?p0:float -> unit -> float
(** Exact Bayes detection rate between two normals ([p0] defaults 0.5). *)

val sample_mean_exact : sigma_l:float -> sigma_h:float -> float
(** Exact detection rate for the sample-mean feature: equal-mean normals
    with the given PIAT sigmas (any common sample size cancels).
    [0 < sigma_l <= sigma_h]. *)

val sample_variance_exact : sigma2_l:float -> sigma2_h:float -> n:int -> float
(** Exact detection rate for the sample-variance feature under normal
    PIATs: S² follows a scaled chi-square (Gamma((n−1)/2, 2σ²/(n−1)));
    same-shape gammas have a single likelihood crossing, located in closed
    form, and the error integrals are regularized incomplete gammas.
    [n >= 2], [0 < sigma2_l <= sigma2_h]. *)

val sample_entropy_normal_approx :
  sigma2_l:float -> sigma2_h:float -> n:int -> float
(** Detection rate for the entropy feature under the normal approximation
    Ĥ ~ N(½ ln(2πeσ²), 1/(2n)) (asymptotic variance of the plug-in
    differential-entropy estimator for a Gaussian).  [n >= 1]. *)

val detection_max_integral :
  f0:(float -> float) ->
  f1:(float -> float) ->
  ?p0:float ->
  lo:float ->
  hi:float ->
  unit ->
  float
(** Numeric v = ∫ max(p0 f0, p1 f1) over [lo, hi] by adaptive Simpson —
    used to score a trained KDE pair against its own training densities
    (an upper bound on what run-time classification can achieve). *)
