(** Design guidelines (paper §6): configure VIT padding so the system meets
    a detection-rate budget against a bounded adversary.

    The designer knows the gateway jitter magnitudes (measurable offline),
    assumes the adversary taps at the worst-case point (σ_net = 0) and can
    collect at most [n_max] PIATs at one payload rate, and wants the
    detection rate by the strongest feature to stay below [v_max]. *)

type requirement = {
  sigma_gw_low : float;   (** measured gateway jitter σ at the low rate *)
  sigma_gw_high : float;  (** ... at the high rate; >= sigma_gw_low *)
  n_max : int;            (** adversary's sample-size budget, >= 2 *)
  v_max : float;          (** tolerated detection rate, in (0.5, 1) *)
}

val worst_feature_v : r:float -> n:int -> float
(** max over the paper's three features of the theoretical detection rate
    — variance and entropy dominate mean everywhere, so this is
    max(v_variance, v_entropy, v_mean). *)

val required_sigma_t : requirement -> float
(** Smallest timer σ_T meeting the requirement, found by bisection on the
    monotone map σ_T ↦ worst-feature detection rate.  Returns 0 if CIT
    already satisfies it.  Raises [Invalid_argument] on a malformed
    requirement. *)

val achievable_sample_size : sigma_t:float -> req:requirement -> float
(** Given a σ_T, the sample size at which the worst feature first exceeds
    [req.v_max] (real-valued; the adversary needs more than this).  +∞ when
    even unbounded sampling stays below the budget (r = 1). *)

val overhead_fraction : payload_rate_pps:float -> timer_mean:float -> float
(** Bandwidth accounting for the guideline discussion: fraction of padded
    packets that are dummies when a payload stream of the given rate rides
    a timer of the given mean period (= 1 − rate·τ, clamped to [0,1]).
    [payload_rate_pps >= 0], [timer_mean > 0]. *)
