type components = {
  sigma_t : float;
  sigma_net : float;
  sigma_gw_low : float;
  sigma_gw_high : float;
}

let make ?(sigma_t = 0.0) ?(sigma_net = 0.0) ~sigma_gw_low ~sigma_gw_high () =
  if sigma_t < 0.0 then invalid_arg "Ratio.make: sigma_t < 0";
  if sigma_net < 0.0 then invalid_arg "Ratio.make: sigma_net < 0";
  if sigma_gw_low <= 0.0 then invalid_arg "Ratio.make: sigma_gw_low <= 0";
  if sigma_gw_high < sigma_gw_low then
    invalid_arg "Ratio.make: sigma_gw_high < sigma_gw_low";
  { sigma_t; sigma_net; sigma_gw_low; sigma_gw_high }

let sq x = x *. x

let sigma_low c = sqrt (sq c.sigma_t +. sq c.sigma_net +. sq c.sigma_gw_low)
let sigma_high c = sqrt (sq c.sigma_t +. sq c.sigma_net +. sq c.sigma_gw_high)

let r c =
  let base = sq c.sigma_t +. sq c.sigma_net in
  (base +. sq c.sigma_gw_high) /. (base +. sq c.sigma_gw_low)

let r_of_variances ~var_low ~var_high =
  if var_low <= 0.0 then invalid_arg "Ratio.r_of_variances: var_low <= 0";
  if var_high < var_low then
    invalid_arg "Ratio.r_of_variances: var_high < var_low";
  var_high /. var_low
