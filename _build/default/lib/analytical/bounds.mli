(** Information-theoretic bounds on the detection rate.

    The paper derives approximate closed forms (Theorems 1–3); classical
    Bhattacharyya bounds give a rigorous sandwich around the exact Bayes
    detection rate, with closed forms for both feature laws used here:
    equal-mean normals (sample mean) and same-shape gammas (sample
    variance).  For equal priors,

      (1 − √(1 − ρ²))/2  ≤  Bayes error  ≤  ρ/2

    where ρ is the Bhattacharyya coefficient ∫ √(f₀ f₁); detection rate
    bounds follow as v ∈ [1 − ρ/2 inverted accordingly]. *)

type bracket = { lower : float; upper : float }
(** [lower <= exact detection rate <= upper]. *)

val bhattacharyya_normal :
  mu0:float -> s0:float -> mu1:float -> s1:float -> float
(** ρ for two normals; [s0, s1 > 0].  1 when identical, → 0 as they
    separate. *)

val bhattacharyya_gamma_same_shape :
  shape:float -> scale0:float -> scale1:float -> float
(** ρ = (2√(θ₀θ₁)/(θ₀+θ₁))^k for Gamma(k, θ₀) vs Gamma(k, θ₁);
    [shape > 0], scales > 0. *)

val kl_normal : mu0:float -> s0:float -> mu1:float -> s1:float -> float
(** KL(N₀ ‖ N₁) in nats; the asymptotic exponent of the error of a
    likelihood-ratio adversary collecting iid observations. *)

val detection_bracket_of_rho : float -> bracket
(** Convert a Bhattacharyya coefficient (in [0,1]) into detection-rate
    bounds for equal priors. *)

val sample_mean_bracket : sigma_l:float -> sigma_h:float -> bracket
(** Bounds for the sample-mean feature (independent of n). *)

val sample_variance_bracket :
  sigma2_l:float -> sigma2_h:float -> n:int -> bracket
(** Bounds for the sample-variance feature at sample size [n >= 2], via
    the exact gamma law of S². *)
