(** Packet-size attack — the channel §3.2 remark (3) closes by fiat.

    With variable-size packets on the wire, the per-window mean size and
    the size entropy classify the traffic class just like the timing
    features classify the rate.  This module mounts that attack on the
    size column a {!Netsim.Tap} records; against a size-padded stream
    every window collapses to the constant target and detection falls to
    the floor. *)

type kind =
  | Mean_size
  | Size_entropy
      (** Shannon entropy of the empirical distribution over the distinct
          sizes in the window (nats). *)

val name : kind -> string

val extract : kind -> int array -> float
(** Feature of one window of packet sizes; requires a non-empty window. *)

val features_of_trace : kind -> window:int -> int array -> float array
(** One feature per non-overlapping window of [window] packets. *)

val estimate :
  ?priors:float array ->
  kind:kind ->
  window:int ->
  classes:(string * int array) array ->
  unit ->
  Detection.result
(** End-to-end size-based detection rate over per-class size columns. *)
