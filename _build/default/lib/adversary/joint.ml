type cls = { name : string; prior : float; kdes : Stats.Kde.t array }

type t = { classes : cls array; num_features : int }

let train ?priors ~classes () =
  let m = Array.length classes in
  if m < 2 then invalid_arg "Joint.train: need >= 2 classes";
  let priors =
    match priors with
    | None -> Array.make m (1.0 /. float_of_int m)
    | Some p ->
        if Array.length p <> m then invalid_arg "Joint.train: priors length mismatch";
        let total = Array.fold_left ( +. ) 0.0 p in
        if total <= 0.0 || Array.exists (fun x -> x <= 0.0) p then
          invalid_arg "Joint.train: priors must be positive";
        Array.map (fun x -> x /. total) p
  in
  let widths =
    Array.map
      (fun (_, vectors) ->
        if Array.length vectors = 0 then invalid_arg "Joint.train: empty class";
        let w = Array.length vectors.(0) in
        if w < 1 then invalid_arg "Joint.train: zero-width vectors";
        Array.iter
          (fun v ->
            if Array.length v <> w then invalid_arg "Joint.train: ragged vectors")
          vectors;
        w)
      classes
  in
  let num_features = widths.(0) in
  Array.iter
    (fun w -> if w <> num_features then invalid_arg "Joint.train: ragged classes")
    widths;
  let classes =
    Array.mapi
      (fun i (name, vectors) ->
        let kdes =
          Array.init num_features (fun f ->
              Stats.Kde.fit (Array.map (fun v -> v.(f)) vectors))
        in
        { name; prior = priors.(i); kdes })
      classes
  in
  { classes; num_features }

let num_features t = t.num_features
let num_classes t = Array.length t.classes

let log_score t c v =
  let acc = ref (log c.prior) in
  for f = 0 to t.num_features - 1 do
    acc := !acc +. Stats.Kde.log_pdf c.kdes.(f) v.(f)
  done;
  !acc

let classify t v =
  if Array.length v <> t.num_features then
    invalid_arg "Joint.classify: wrong vector width";
  let best = ref 0 in
  let best_score = ref (log_score t t.classes.(0) v) in
  for i = 1 to Array.length t.classes - 1 do
    let s = log_score t t.classes.(i) v in
    if s > !best_score then begin
      best := i;
      best_score := s
    end
  done;
  !best

let accuracy t cases =
  let m = num_classes t in
  let correct = Array.make m 0 and total = Array.make m 0 in
  Array.iter
    (fun (label, vectors) ->
      if label < 0 || label >= m then invalid_arg "Joint.accuracy: bad label";
      Array.iter
        (fun v ->
          total.(label) <- total.(label) + 1;
          if classify t v = label then correct.(label) <- correct.(label) + 1)
        vectors)
    cases;
  let acc = ref 0.0 in
  for i = 0 to m - 1 do
    if total.(i) = 0 then invalid_arg "Joint.accuracy: class without test data";
    acc :=
      !acc
      +. (t.classes.(i).prior *. float_of_int correct.(i) /. float_of_int total.(i))
  done;
  !acc

let feature_vectors ~features ~reference ~sample_size trace =
  let kinds = Array.of_list features in
  if Array.length kinds = 0 then invalid_arg "Joint.feature_vectors: no features";
  let windows = Dataset.slice trace ~sample_size in
  Array.map
    (fun w -> Array.map (fun kind -> Feature.extract kind ~reference w) kinds)
    windows

let split_vectors vs =
  let n = Array.length vs in
  let even = Array.make ((n + 1) / 2) [||] in
  let odd = Array.make (n / 2) [||] in
  Array.iteri
    (fun i v -> if i mod 2 = 0 then even.(i / 2) <- v else odd.(i / 2) <- v)
    vs;
  (even, odd)

let estimate ?priors ~features ~reference ~sample_size ~classes () =
  let vectors =
    Array.map
      (fun (name, trace) ->
        (name, feature_vectors ~features ~reference ~sample_size trace))
      classes
  in
  let split = Array.map (fun (_, vs) -> split_vectors vs) vectors in
  Array.iter
    (fun (train, test) ->
      if Array.length train < 2 || Array.length test < 2 then
        invalid_arg "Joint.estimate: fewer than 4 vectors in a class")
    split;
  let model =
    train ?priors
      ~classes:(Array.map2 (fun (name, _) (tr, _) -> (name, tr)) vectors split)
      ()
  in
  accuracy model (Array.mapi (fun i (_, test) -> (i, test)) split)
