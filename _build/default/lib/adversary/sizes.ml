type kind = Mean_size | Size_entropy

let name = function Mean_size -> "mean-size" | Size_entropy -> "size-entropy"

let extract kind window =
  let n = Array.length window in
  if n = 0 then invalid_arg "Sizes.extract: empty window";
  match kind with
  | Mean_size ->
      float_of_int (Array.fold_left ( + ) 0 window) /. float_of_int n
  | Size_entropy ->
      let tbl = Hashtbl.create 16 in
      Array.iter
        (fun s ->
          Hashtbl.replace tbl s (1 + Option.value (Hashtbl.find_opt tbl s) ~default:0))
        window;
      Hashtbl.fold
        (fun _ k acc ->
          let p = float_of_int k /. float_of_int n in
          acc -. (p *. log p))
        tbl 0.0

let features_of_trace kind ~window trace =
  if window < 1 then invalid_arg "Sizes.features_of_trace: window < 1";
  let count = Array.length trace / window in
  if count = 0 then
    invalid_arg "Sizes.features_of_trace: trace shorter than one window";
  Array.init count (fun i ->
      extract kind (Array.sub trace (i * window) window))

let estimate ?priors ~kind ~window ~classes () =
  let named_features =
    Array.map
      (fun (cls_name, sizes) ->
        (cls_name, features_of_trace kind ~window sizes))
      classes
  in
  Detection.estimate_on_features ?priors ~feature:Feature.Sample_mean
    ~sample_size:window ~named_features ()
