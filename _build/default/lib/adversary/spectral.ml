type kind = Spectral_entropy | Spectral_power

let name = function
  | Spectral_entropy -> "spectral-entropy"
  | Spectral_power -> "spectral-power"

let extract kind window =
  if Array.length window < 4 then invalid_arg "Spectral.extract: need n >= 4";
  match kind with
  | Spectral_entropy -> Stats.Fourier.spectral_entropy window
  | Spectral_power ->
      let p = Stats.Fourier.periodogram window in
      let acc = ref 0.0 in
      for k = 1 to Array.length p - 1 do
        acc := !acc +. p.(k)
      done;
      !acc

let features_of_trace kind ~sample_size trace =
  let windows = Dataset.slice trace ~sample_size in
  if Array.length windows = 0 then
    invalid_arg "Spectral.features_of_trace: trace shorter than one window";
  Array.map (extract kind) windows

let estimate ?priors ~kind ~sample_size ~classes () =
  let named_features =
    Array.map
      (fun (cls_name, trace) ->
        (cls_name, features_of_trace kind ~sample_size trace))
      classes
  in
  (* Reported under the variance feature's banner sizes; the result's
     [feature] field is not meaningful for spectral kinds, so reuse
     Sample_variance as the carrier and rely on the caller's labeling. *)
  Detection.estimate_on_features ?priors ~feature:Feature.Sample_variance
    ~sample_size ~named_features ()
