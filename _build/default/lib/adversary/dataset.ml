let slice trace ~sample_size =
  if sample_size < 1 then invalid_arg "Dataset.slice: sample_size < 1";
  let n = Array.length trace / sample_size in
  Array.init n (fun i -> Array.sub trace (i * sample_size) sample_size)

let features_of_trace kind ~reference ~sample_size trace =
  let windows = slice trace ~sample_size in
  if Array.length windows = 0 then
    invalid_arg "Dataset.features_of_trace: trace shorter than one window";
  Array.map (Feature.extract kind ~reference) windows

let split_alternating xs =
  let n = Array.length xs in
  let even = Array.make ((n + 1) / 2) 0.0 in
  let odd = Array.make (n / 2) 0.0 in
  Array.iteri
    (fun i x -> if i mod 2 = 0 then even.(i / 2) <- x else odd.(i / 2) <- x)
    xs;
  (even, odd)
