(** Spectral traffic-analysis features — frequency-domain ablation.

    The padded stream's PIAT series is (nearly) white under ideal padding;
    payload-correlated jitter tints it.  Two scalar features are exposed:
    the spectral entropy of the PIAT periodogram (flatness) and the total
    non-DC spectral power (which equals the series variance by Parseval,
    but measured through the FFT path — a consistency check as much as a
    feature).  Both plug into {!Detection.estimate_on_features}. *)

type kind =
  | Spectral_entropy
  | Spectral_power

val name : kind -> string

val extract : kind -> float array -> float
(** Feature of one PIAT window; requires length >= 4. *)

val features_of_trace :
  kind -> sample_size:int -> float array -> float array
(** One feature value per non-overlapping window of the trace. *)

val estimate :
  ?priors:float array ->
  kind:kind ->
  sample_size:int ->
  classes:(string * float array) array ->
  unit ->
  Detection.result
(** End-to-end spectral detection rate (KDE-Bayes over the spectral
    feature, interleaved train/test split). *)
