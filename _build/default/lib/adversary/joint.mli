(** Joint (multi-feature) naive-Bayes adversary — §6-flavoured extension.

    The paper scores each feature statistic separately; a stronger
    adversary combines them.  Under a naive-Bayes (per-class feature
    independence) assumption the combined log-posterior is the sum of the
    per-feature KDE log-densities — simple, and strictly more informed
    than any single feature when the features carry complementary noise. *)

type t

val train :
  ?priors:float array ->
  classes:(string * float array array) array ->
  unit ->
  t
(** [classes.(i) = (name, vectors)] where [vectors.(j)] is the j-th
    training observation: one float per feature, all observations the same
    width (>= 1).  Raises on ragged input, empty classes, or < 2 classes. *)

val num_features : t -> int
val num_classes : t -> int
val classify : t -> float array -> int
(** Vector width must equal [num_features]. *)

val accuracy : t -> (int * float array array) array -> float
(** Prior-weighted accuracy over labeled feature-vector test sets. *)

val feature_vectors :
  features:Feature.kind list ->
  reference:float ->
  sample_size:int ->
  float array ->
  float array array
(** Slice a PIAT trace into windows and compute one feature vector per
    window, in the order of [features]. *)

val estimate :
  ?priors:float array ->
  features:Feature.kind list ->
  reference:float ->
  sample_size:int ->
  classes:(string * float array) array ->
  unit ->
  float
(** End-to-end joint detection rate with the interleaved train/test split
    (the multi-feature analogue of {!Detection.estimate}). *)
