(** Turning raw PIAT traces into labeled feature datasets. *)

val slice : float array -> sample_size:int -> float array array
(** Non-overlapping consecutive windows of [sample_size] PIATs; the
    trailing remainder is discarded.  [sample_size >= 1]. *)

val features_of_trace :
  Feature.kind -> reference:float -> sample_size:int -> float array -> float array
(** One feature value per {!slice} window.  Raises if the trace yields no
    complete window. *)

val split_alternating : float array -> float array * float array
(** Even-indexed elements and odd-indexed elements — an interleaved
    train/test split that keeps both halves exposed to the same slow
    drifts (time-of-day, queue warm-up) instead of training on the first
    half-hour and testing on the second. *)
