let counts_per_window timestamps ~window =
  if window <= 0.0 then invalid_arg "Counting.counts_per_window: window <= 0";
  let n = Array.length timestamps in
  if n = 0 then [||]
  else begin
    let t0 = timestamps.(0) in
    let span = timestamps.(n - 1) -. t0 in
    let windows = Stdlib.max 1 (int_of_float (Float.floor (span /. window))) in
    let counts = Array.make windows 0 in
    Array.iter
      (fun t ->
        let i = int_of_float (Float.floor ((t -. t0) /. window)) in
        if i >= 0 && i < windows then counts.(i) <- counts.(i) + 1)
      timestamps;
    Array.map float_of_int counts
  end

let estimate ?priors ~window ~classes () =
  let named_features =
    Array.map
      (fun (name, timestamps) -> (name, counts_per_window timestamps ~window))
      classes
  in
  Detection.estimate_on_features ?priors ~feature:Feature.Sample_mean
    ~sample_size:1 ~named_features ()
