(** Packet-counting attack — the baseline padding defends against.

    On *unpadded* traffic the payload rate is readable directly from the
    number of packets per time window (Raymond 2001, paper §2).  This
    module mounts that attack so the examples can show detection ≈ 100%
    without padding and ≈ 50% with it: the motivation for the whole
    countermeasure. *)

val counts_per_window : float array -> window:float -> float array
(** [counts_per_window timestamps ~window] buckets arrival timestamps into
    consecutive windows of [window] seconds starting at the first arrival
    and returns the per-window packet counts (as floats, so they feed the
    scalar {!Classifier}).  Empty input gives an empty array.
    [window > 0]. *)

val estimate :
  ?priors:float array ->
  window:float ->
  classes:(string * float array) array ->
  unit ->
  Detection.result
(** KDE-Bayes detection rate using the per-window count as the feature;
    [classes.(i) = (name, arrival timestamps)].  Reported with
    [feature = Sample_mean] semantics (the count is a windowed mean rate)
    and [sample_size] = number of windows is folded into the per-class
    counts. *)
