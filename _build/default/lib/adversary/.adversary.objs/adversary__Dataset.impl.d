lib/adversary/dataset.ml: Array Feature
