lib/adversary/spectral.mli: Detection
