lib/adversary/counting.ml: Array Detection Feature Float Stdlib
