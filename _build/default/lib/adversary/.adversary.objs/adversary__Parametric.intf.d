lib/adversary/parametric.mli:
