lib/adversary/joint.mli: Feature
