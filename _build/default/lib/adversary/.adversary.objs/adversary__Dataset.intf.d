lib/adversary/dataset.mli: Feature
