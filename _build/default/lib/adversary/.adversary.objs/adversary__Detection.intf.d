lib/adversary/detection.mli: Feature
