lib/adversary/feature.mli:
