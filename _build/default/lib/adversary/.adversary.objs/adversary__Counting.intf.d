lib/adversary/counting.mli: Detection
