lib/adversary/classifier.mli: Stats
