lib/adversary/spectral.ml: Array Dataset Detection Feature Stats
