lib/adversary/joint.ml: Array Dataset Feature Stats
