lib/adversary/sizes.ml: Array Detection Feature Hashtbl Option
