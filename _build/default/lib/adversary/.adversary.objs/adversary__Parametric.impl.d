lib/adversary/parametric.ml: Array Float Stats
