lib/adversary/roc.ml: Array Float List
