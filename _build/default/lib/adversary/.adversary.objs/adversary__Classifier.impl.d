lib/adversary/classifier.ml: Array Float Stats
