lib/adversary/detection.ml: Array Classifier Dataset Feature List Parametric
