lib/adversary/feature.ml: Array Stats
