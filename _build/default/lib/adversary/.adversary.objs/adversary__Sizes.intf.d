lib/adversary/sizes.mli: Detection
