lib/adversary/roc.mli:
