(** ROC analysis for the two-class detector.

    The paper fixes equal priors and reports one accuracy number; an IDS
    operator instead tunes the decision threshold d along the feature axis
    and trades false alarms (classifying ω_l traffic as ω_h) against hits
    (catching ω_h).  The ROC curve makes the whole trade-off — and the
    threshold-free AUC summary — visible from the same feature samples. *)

type point = {
  threshold : float;
  false_alarm : float;  (** P(score > threshold | negative class) *)
  hit_rate : float;     (** P(score > threshold | positive class) *)
}

val curve : negatives:float array -> positives:float array -> point list
(** Points for every distinct score (plus the two degenerate endpoints),
    ordered by decreasing threshold — i.e. from (0,0) to (1,1).  The
    positive class is the one expected to score *higher* (for the paper's
    features: the high payload rate).  Raises on empty inputs. *)

val auc : negatives:float array -> positives:float array -> float
(** Area under the ROC curve = P(random positive scores above random
    negative) + ½·P(tie) — computed by the Mann–Whitney statistic, exact
    for the sample.  0.5 = blind, 1.0 = separable. *)

val best_accuracy : negatives:float array -> positives:float array -> float * float
(** [(threshold, accuracy)] maximizing equal-prior accuracy
    (hit + (1 − false alarm))/2 over the curve — the empirical analogue of
    the paper's Bayes point. *)
