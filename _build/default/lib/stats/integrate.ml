let simpson_panel f a fa b fb =
  let m = 0.5 *. (a +. b) in
  let fm = f m in
  (m, fm, (b -. a) /. 6.0 *. (fa +. (4.0 *. fm) +. fb))

let simpson ?(eps = 1e-10) ?(max_depth = 50) f ~lo ~hi =
  if lo = hi then 0.0
  else
    let sign, a, b = if lo < hi then (1.0, lo, hi) else (-1.0, hi, lo) in
    let fa = f a and fb = f b in
    let m, fm, whole = simpson_panel f a fa b fb in
    let rec go a fa b fb m fm whole eps depth =
      let lm, flm, left = simpson_panel f a fa m fm in
      let rm, frm, right = simpson_panel f m fm b fb in
      let delta = left +. right -. whole in
      if depth >= max_depth || Float.abs delta <= 15.0 *. eps then
        left +. right +. (delta /. 15.0)
      else
        go a fa m fm lm flm left (eps /. 2.0) (depth + 1)
        +. go m fm b fb rm frm right (eps /. 2.0) (depth + 1)
    in
    sign *. go a fa b fb m fm whole eps 0

let trapezoid f ~lo ~hi ~n =
  if n < 1 then invalid_arg "Integrate.trapezoid: n < 1";
  let h = (hi -. lo) /. float_of_int n in
  let acc = ref (0.5 *. (f lo +. f hi)) in
  for i = 1 to n - 1 do
    acc := !acc +. f (lo +. (float_of_int i *. h))
  done;
  !acc *. h
