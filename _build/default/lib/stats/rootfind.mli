(** Scalar root finding, used to locate the Bayes decision threshold d where
    the two class-conditional densities cross (paper eq. 3). *)

val bisect : ?eps:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> float
(** Bisection on a sign-changing bracket; raises [Invalid_argument] if
    [f lo] and [f hi] have the same strict sign.  [eps] is the interval
    tolerance (default 1e-12 relative to bracket width). *)

val brent : ?eps:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> float
(** Brent's method (inverse quadratic + secant + bisection fallback);
    same bracketing contract as {!bisect}, much faster on smooth f. *)

val find_bracket :
  (float -> float) -> center:float -> step:float -> ?max_expand:int -> unit -> (float * float) option
(** Expand outward geometrically from [center] until a sign change is found;
    [None] if none within [max_expand] doublings (default 60). *)
