(** Confidence intervals for the empirical detection rates.

    A detection-rate estimate is a binomial proportion (correct
    classifications out of held-out trials); every empirical number in the
    figure tables deserves an interval, and with the small held-out sets
    the scenarios use, Wilson's score interval is markedly better behaved
    than the naive normal ("Wald") one. *)

type interval = { lo : float; hi : float }

val wilson : successes:int -> trials:int -> confidence:float -> interval
(** Wilson score interval for a binomial proportion.
    [0 <= successes <= trials], [trials >= 1], [confidence] in (0, 1). *)

val wald : successes:int -> trials:int -> confidence:float -> interval
(** Normal-approximation interval, clamped to [0, 1]; for comparison. *)

val mean_t : float array -> confidence:float -> interval
(** Interval for a population mean using the normal quantile (the sample
    sizes here are far beyond where the t correction matters); requires
    n >= 2. *)

val contains : interval -> float -> bool
val width : interval -> float
