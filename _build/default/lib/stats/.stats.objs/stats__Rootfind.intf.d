lib/stats/rootfind.mli:
