lib/stats/confidence.mli:
