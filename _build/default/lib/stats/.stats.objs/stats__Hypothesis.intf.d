lib/stats/hypothesis.mli:
