lib/stats/fourier.ml: Array Descriptive Float
