lib/stats/entropy.ml: Array Descriptive Float Histogram Stdlib
