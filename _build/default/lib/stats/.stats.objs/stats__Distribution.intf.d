lib/stats/distribution.mli: Prng
