lib/stats/integrate.ml: Float
