lib/stats/discrete.mli: Prng
