lib/stats/integrate.mli:
