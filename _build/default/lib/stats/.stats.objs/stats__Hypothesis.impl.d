lib/stats/hypothesis.ml: Array Descriptive Float Special
