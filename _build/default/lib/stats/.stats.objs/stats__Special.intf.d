lib/stats/special.mli:
