lib/stats/distribution.ml: Float Printf Prng Rootfind Special
