lib/stats/histogram.mli:
