lib/stats/fourier.mli:
