lib/stats/kde.mli:
