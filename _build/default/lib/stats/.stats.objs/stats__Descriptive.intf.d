lib/stats/descriptive.mli:
