lib/stats/discrete.ml: Float Printf Prng Special
