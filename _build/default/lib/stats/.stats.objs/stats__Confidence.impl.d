lib/stats/confidence.ml: Array Descriptive Float Special
