lib/stats/kde.ml: Array Descriptive Float Special
