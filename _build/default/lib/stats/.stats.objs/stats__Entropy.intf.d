lib/stats/entropy.mli: Histogram
