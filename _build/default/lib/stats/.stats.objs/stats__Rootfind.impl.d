lib/stats/rootfind.ml: Float
