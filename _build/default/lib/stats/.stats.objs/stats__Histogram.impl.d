lib/stats/histogram.ml: Array Descriptive Float
