type t = {
  name : string;
  pmf : int -> float;
  log_pmf : int -> float;
  cdf : int -> float;
  mean : float;
  variance : float;
  sample : Prng.Rng.t -> int;
}

let poisson ~mean =
  if mean <= 0.0 then invalid_arg "Discrete.poisson: mean <= 0";
  let log_pmf k =
    if k < 0 then Float.neg_infinity
    else
      (float_of_int k *. log mean) -. mean
      -. Special.log_gamma (float_of_int k +. 1.0)
  in
  {
    name = Printf.sprintf "poisson(%.6g)" mean;
    pmf = (fun k -> if k < 0 then 0.0 else exp (log_pmf k));
    log_pmf;
    cdf =
      (fun k ->
        if k < 0 then 0.0
        else Special.gamma_q ~a:(float_of_int (k + 1)) ~x:mean);
    mean;
    variance = mean;
    sample = (fun rng -> Prng.Sampler.poisson rng ~mean);
  }

let log_choose n k =
  Special.log_gamma (float_of_int (n + 1))
  -. Special.log_gamma (float_of_int (k + 1))
  -. Special.log_gamma (float_of_int (n - k + 1))

let binomial ~n ~p =
  if n < 0 then invalid_arg "Discrete.binomial: n < 0";
  if p < 0.0 || p > 1.0 then invalid_arg "Discrete.binomial: p out of [0,1]";
  let log_pmf k =
    if k < 0 || k > n then Float.neg_infinity
    else if p = 0.0 then (if k = 0 then 0.0 else Float.neg_infinity)
    else if p = 1.0 then (if k = n then 0.0 else Float.neg_infinity)
    else
      log_choose n k
      +. (float_of_int k *. log p)
      +. (float_of_int (n - k) *. log (1.0 -. p))
  in
  let pmf k = if k < 0 || k > n then 0.0 else exp (log_pmf k) in
  {
    name = Printf.sprintf "binomial(%d,%.6g)" n p;
    pmf;
    log_pmf;
    cdf =
      (fun k ->
        if k < 0 then 0.0
        else if k >= n then 1.0
        else begin
          let acc = ref 0.0 in
          for i = 0 to k do
            acc := !acc +. pmf i
          done;
          Float.min 1.0 !acc
        end);
    mean = float_of_int n *. p;
    variance = float_of_int n *. p *. (1.0 -. p);
    sample =
      (fun rng ->
        let hits = ref 0 in
        for _ = 1 to n do
          if Prng.Sampler.bernoulli rng ~p then incr hits
        done;
        !hits);
  }

let geometric ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Discrete.geometric: p out of (0,1]";
  let q = 1.0 -. p in
  {
    name = Printf.sprintf "geometric(%.6g)" p;
    pmf = (fun k -> if k < 0 then 0.0 else p *. (q ** float_of_int k));
    log_pmf =
      (fun k ->
        if k < 0 then Float.neg_infinity
        else if q = 0.0 then (if k = 0 then 0.0 else Float.neg_infinity)
        else log p +. (float_of_int k *. log q));
    cdf = (fun k -> if k < 0 then 0.0 else 1.0 -. (q ** float_of_int (k + 1)));
    mean = q /. p;
    variance = q /. (p *. p);
    sample = (fun rng -> Prng.Sampler.geometric rng ~p);
  }

let bayes_detection_two d0 d1 ?(p0 = 0.5) ?k_max () =
  if p0 <= 0.0 || p0 >= 1.0 then invalid_arg "Discrete: p0 out of (0,1)";
  let p1 = 1.0 -. p0 in
  let k_max =
    match k_max with
    | Some k when k >= 0 -> k
    | Some _ -> invalid_arg "Discrete: k_max < 0"
    | None ->
        let reach d = d.mean +. (12.0 *. sqrt (Float.max d.variance 1.0)) in
        int_of_float (Float.ceil (Float.max (reach d0) (reach d1)))
  in
  let acc = ref 0.0 in
  for k = 0 to k_max do
    acc := !acc +. Float.max (p0 *. d0.pmf k) (p1 *. d1.pmf k)
  done;
  Float.min 1.0 !acc
