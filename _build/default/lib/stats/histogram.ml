type t = {
  lo : float;
  bin_width : float;
  counts : int array;
  mutable total : int;
}

let create ~lo ~bin_width ~bins =
  if bin_width <= 0.0 then invalid_arg "Histogram.create: bin_width <= 0";
  if bins <= 0 then invalid_arg "Histogram.create: bins <= 0";
  { lo; bin_width; counts = Array.make bins 0; total = 0 }

let bins t = Array.length t.counts
let bin_width t = t.bin_width
let lo t = t.lo
let count t = t.total

let index_of t x =
  let i = int_of_float (Float.floor ((x -. t.lo) /. t.bin_width)) in
  if i < 0 then 0 else if i >= bins t then bins t - 1 else i

let add t x =
  let i = index_of t x in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1

let of_data ?(bins = 64) xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Histogram.of_data: empty";
  if bins <= 0 then invalid_arg "Histogram.of_data: bins <= 0";
  let lo = Descriptive.minimum xs and hi = Descriptive.maximum xs in
  let span = if hi > lo then hi -. lo else Float.max (Float.abs lo) 1.0 *. 1e-9 in
  (* Widen slightly so the maximum lands inside the last bin. *)
  let bin_width = span *. (1.0 +. 1e-9) /. float_of_int bins in
  let t = create ~lo ~bin_width ~bins in
  Array.iter (add t) xs;
  t

let check_index t i =
  if i < 0 || i >= bins t then invalid_arg "Histogram: bin index out of range"

let bin_count t i =
  check_index t i;
  t.counts.(i)

let bin_center t i =
  check_index t i;
  t.lo +. ((float_of_int i +. 0.5) *. t.bin_width)

let density t i =
  check_index t i;
  if t.total = 0 then 0.0
  else float_of_int t.counts.(i) /. (float_of_int t.total *. t.bin_width)

let densities t = Array.init (bins t) (fun i -> (bin_center t i, density t i))

let probabilities t =
  if t.total = 0 then Array.make (bins t) 0.0
  else Array.map (fun k -> float_of_int k /. float_of_int t.total) t.counts

let mode_bin t =
  if t.total = 0 then invalid_arg "Histogram.mode_bin: empty";
  let best = ref 0 in
  Array.iteri (fun i k -> if k > t.counts.(!best) then best := i) t.counts;
  !best
