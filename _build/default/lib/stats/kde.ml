type t = { points : float array; h : float }

let silverman xs =
  let n = float_of_int (Array.length xs) in
  let sd = if Array.length xs >= 2 then Descriptive.std xs else 0.0 in
  let iqr = Descriptive.quantile xs 0.75 -. Descriptive.quantile xs 0.25 in
  let spread =
    match (sd > 0.0, iqr > 0.0) with
    | true, true -> Float.min sd (iqr /. 1.34)
    | true, false -> sd
    | false, true -> iqr /. 1.34
    | false, false -> 0.0
  in
  let h = 0.9 *. spread *. (n ** -0.2) in
  if h > 0.0 then h
  else
    (* Degenerate (constant) data: fall back to a width proportional to the
       magnitude of the data so the density stays proper. *)
    let scale = Float.max (Float.abs xs.(0)) 1e-12 in
    1e-6 *. scale

let fit ?bandwidth xs =
  if Array.length xs = 0 then invalid_arg "Kde.fit: empty";
  let h =
    match bandwidth with
    | Some h when h <= 0.0 -> invalid_arg "Kde.fit: bandwidth <= 0"
    | Some h -> h
    | None -> silverman xs
  in
  { points = Array.copy xs; h }

let bandwidth t = t.h
let sample_size t = Array.length t.points

let pdf t x =
  let n = float_of_int (Array.length t.points) in
  let inv_h = 1.0 /. t.h in
  let acc = ref 0.0 in
  Array.iter
    (fun xi ->
      let z = (x -. xi) *. inv_h in
      acc := !acc +. exp (-0.5 *. z *. z))
    t.points;
  !acc /. (n *. t.h *. sqrt (2.0 *. Float.pi))

let log_pdf t x =
  let n = float_of_int (Array.length t.points) in
  let inv_h = 1.0 /. t.h in
  (* log-sum-exp over kernel exponents *)
  let max_e = ref Float.neg_infinity in
  let exps =
    Array.map
      (fun xi ->
        let z = (x -. xi) *. inv_h in
        let e = -0.5 *. z *. z in
        if e > !max_e then max_e := e;
        e)
      t.points
  in
  let sum = Array.fold_left (fun acc e -> acc +. exp (e -. !max_e)) 0.0 exps in
  !max_e +. log sum -. log (n *. t.h *. sqrt (2.0 *. Float.pi))

let cdf t x =
  let n = float_of_int (Array.length t.points) in
  let acc = ref 0.0 in
  Array.iter
    (fun xi -> acc := !acc +. Special.normal_cdf ~mu:xi ~sigma:t.h x)
    t.points;
  !acc /. n

let support t =
  let lo = Descriptive.minimum t.points -. (6.0 *. t.h) in
  let hi = Descriptive.maximum t.points +. (6.0 *. t.h) in
  (lo, hi)
