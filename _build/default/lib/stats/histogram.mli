(** Fixed-bin-width histograms.

    The paper's robust entropy estimator (its eq. 24/25, after Moddemeijer
    1989) is histogram-based with a bin width held constant across the whole
    experiment, so the histogram is a first-class object here rather than a
    display artifact. *)

type t

val create : lo:float -> bin_width:float -> bins:int -> t
(** [create ~lo ~bin_width ~bins] covers [lo, lo + bins * bin_width).
    Requires [bin_width > 0] and [bins > 0].  Observations falling outside
    the range are clamped into the first/last bin (they are the "outliers"
    whose probability weighting makes the estimator robust). *)

val of_data : ?bins:int -> float array -> t
(** Histogram spanning the data range with [bins] equal bins (default 64,
    Sturges-clamped lower bound).  Raises on empty input. *)

val add : t -> float -> unit
val count : t -> int
(** Total observations. *)

val bins : t -> int
val bin_width : t -> float
val lo : t -> float

val bin_count : t -> int -> int
(** Observations in bin [i]; raises on out-of-range index. *)

val bin_center : t -> int -> float

val density : t -> int -> float
(** Normalized density of bin [i]: count / (n * bin_width); 0 if empty. *)

val densities : t -> (float * float) array
(** [(center, density)] for every bin — the empirical PDF curve used to
    reproduce the paper's Fig. 4(a). *)

val probabilities : t -> float array
(** Per-bin probability mass k_i / n (sums to 1 when count > 0). *)

val mode_bin : t -> int
(** Index of the most populated bin; raises if the histogram is empty. *)
