(** First-class continuous distributions.

    A distribution packages pdf/cdf/quantile/moments/sampling behind one
    record so the analytical machinery (Bayes-error integrals, exact
    sample-variance laws) is generic in the underlying law. *)

type t = {
  name : string;
  pdf : float -> float;
  log_pdf : float -> float;
  cdf : float -> float;
  quantile : float -> float;  (** p in (0,1) *)
  mean : float;
  variance : float;
  sample : Prng.Rng.t -> float;
}

val normal : mu:float -> sigma:float -> t
(** [sigma > 0]. *)

val uniform : lo:float -> hi:float -> t
(** [lo < hi]. *)

val exponential : rate:float -> t
(** [rate > 0]. *)

val gamma : shape:float -> scale:float -> t
(** [shape > 0], [scale > 0].  Sampling by Marsaglia–Tsang; quantile by
    bracketed root search on the CDF. *)

val chi_square : dof:int -> t
(** [dof >= 1].  Gamma(dof/2, 2).  Exact law of (n-1)S²/σ² for normal
    samples — the backbone of the exact sample-variance detection rate. *)

val scaled_chi_square : dof:int -> sigma2:float -> t
(** Law of the sample variance S² itself for a normal population with
    variance [sigma2] and sample size dof+1: Gamma(dof/2, 2*sigma2/dof). *)

val lognormal : mu:float -> sigma:float -> t
(** exp of N(mu, sigma²); [sigma > 0]. *)

val pareto : shape:float -> scale:float -> t
(** Pareto type-I; mean/variance are [infinity] when undefined
    (shape <= 1 resp. <= 2). *)
