let is_pow2 n = n > 0 && n land (n - 1) = 0

let next_pow2 n =
  if n < 1 then invalid_arg "Fourier.next_pow2: n < 1";
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* Iterative Cooley-Tukey, decimation in time, with a sign parameter so the
   same body serves forward (-1) and inverse (+1) transforms. *)
let fft_core ~sign ~re ~im =
  let n = Array.length re in
  if Array.length im <> n then invalid_arg "Fourier.fft: length mismatch";
  if not (is_pow2 n) then invalid_arg "Fourier.fft: length not a power of two";
  (* Bit-reversal permutation. *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) in
      re.(i) <- re.(!j);
      re.(!j) <- tr;
      let ti = im.(i) in
      im.(i) <- im.(!j);
      im.(!j) <- ti
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  (* Butterflies. *)
  let len = ref 2 in
  while !len <= n do
    let ang = sign *. 2.0 *. Float.pi /. float_of_int !len in
    let wr = cos ang and wi = sin ang in
    let i = ref 0 in
    while !i < n do
      let cur_r = ref 1.0 and cur_i = ref 0.0 in
      for k = !i to !i + (!len / 2) - 1 do
        let k2 = k + (!len / 2) in
        let xr = (re.(k2) *. !cur_r) -. (im.(k2) *. !cur_i) in
        let xi = (re.(k2) *. !cur_i) +. (im.(k2) *. !cur_r) in
        re.(k2) <- re.(k) -. xr;
        im.(k2) <- im.(k) -. xi;
        re.(k) <- re.(k) +. xr;
        im.(k) <- im.(k) +. xi;
        let nr = (!cur_r *. wr) -. (!cur_i *. wi) in
        cur_i := (!cur_r *. wi) +. (!cur_i *. wr);
        cur_r := nr
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

let fft ~re ~im = fft_core ~sign:(-1.0) ~re ~im

let ifft ~re ~im =
  fft_core ~sign:1.0 ~re ~im;
  let n = float_of_int (Array.length re) in
  for i = 0 to Array.length re - 1 do
    re.(i) <- re.(i) /. n;
    im.(i) <- im.(i) /. n
  done

let periodogram xs =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Fourier.periodogram: need n >= 2";
  let mean = Descriptive.mean xs in
  let n_fft = next_pow2 n in
  let re = Array.make n_fft 0.0 and im = Array.make n_fft 0.0 in
  Array.iteri (fun i x -> re.(i) <- x -. mean) xs;
  fft ~re ~im;
  let half = (n_fft / 2) + 1 in
  Array.init half (fun k ->
      ((re.(k) *. re.(k)) +. (im.(k) *. im.(k))) /. float_of_int n)

let dominant_frequency ~sample_rate xs =
  if Array.length xs < 4 then
    invalid_arg "Fourier.dominant_frequency: need n >= 4";
  if sample_rate <= 0.0 then
    invalid_arg "Fourier.dominant_frequency: sample_rate <= 0";
  let p = periodogram xs in
  let n_fft = 2 * (Array.length p - 1) in
  let best = ref 1 in
  for k = 2 to Array.length p - 1 do
    if p.(k) > p.(!best) then best := k
  done;
  (float_of_int !best *. sample_rate /. float_of_int n_fft, p.(!best))

let autocorrelation_fft xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Fourier.autocorrelation_fft: empty";
  let mean = Descriptive.mean xs in
  (* Zero-pad to 2n to avoid circular wrap-around. *)
  let n_fft = next_pow2 (2 * n) in
  let re = Array.make n_fft 0.0 and im = Array.make n_fft 0.0 in
  Array.iteri (fun i x -> re.(i) <- x -. mean) xs;
  fft ~re ~im;
  for k = 0 to n_fft - 1 do
    re.(k) <- (re.(k) *. re.(k)) +. (im.(k) *. im.(k));
    im.(k) <- 0.0
  done;
  ifft ~re ~im;
  let denom = re.(0) in
  if denom <= 0.0 then Array.make n 0.0
  else Array.init n (fun lag -> re.(lag) /. denom)

let spectral_entropy xs =
  if Array.length xs < 4 then invalid_arg "Fourier.spectral_entropy: need n >= 4";
  let p = periodogram xs in
  (* Skip DC (index 0); normalize the rest into a probability vector. *)
  let total = ref 0.0 in
  for k = 1 to Array.length p - 1 do
    total := !total +. p.(k)
  done;
  if !total <= 0.0 then 0.0
  else begin
    let h = ref 0.0 in
    for k = 1 to Array.length p - 1 do
      let q = p.(k) /. !total in
      if q > 0.0 then h := !h -. (q *. log q)
    done;
    !h
  end
