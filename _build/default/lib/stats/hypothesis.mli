(** Hypothesis tests used to validate the paper's modelling assumptions
    (§4: PIATs are normal; §5 Fig. 4(a): "almost bell-shaped"). *)

type result = {
  statistic : float;
  p_value : float;
}

val ks_test : float array -> cdf:(float -> float) -> result
(** One-sample Kolmogorov–Smirnov against a fully-specified continuous CDF.
    P-value from the asymptotic Kolmogorov distribution with the
    Stephens small-sample correction.  Raises on empty input. *)

val jarque_bera : float array -> result
(** Normality test from sample skewness and kurtosis; chi-square(2)
    asymptotics.  Requires n >= 8 for the asymptotics to be meaningful
    (raises below). *)

val chi_square_gof : observed:int array -> expected:float array -> result
(** Pearson chi-square goodness of fit.  [expected] entries must be
    positive; arrays must agree in length; dof = bins - 1. *)

val kolmogorov_sf : float -> float
(** Survival function of the Kolmogorov distribution, Q(λ) = 2 Σ (-1)^(k-1)
    exp(-2 k² λ²); exposed for tests. *)
