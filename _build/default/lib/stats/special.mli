(** Special functions needed by the statistical machinery.

    Accuracy targets are ~1e-12 relative for the erf family and the Lanczos
    log-gamma, and ~1e-10 for the regularized incomplete gamma — ample for
    detection-rate work where simulation noise dominates. *)

val erf : float -> float
(** Error function. *)

val erfc : float -> float
(** Complementary error function, accurate for large arguments. *)

val log_gamma : float -> float
(** Natural log of the Gamma function, [x > 0].  Lanczos approximation. *)

val gamma_p : a:float -> x:float -> float
(** Regularized lower incomplete gamma P(a, x), [a > 0], [x >= 0]. *)

val gamma_q : a:float -> x:float -> float
(** Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x). *)

val normal_pdf : mu:float -> sigma:float -> float -> float
(** Gaussian density, [sigma > 0]. *)

val normal_cdf : mu:float -> sigma:float -> float -> float
(** Gaussian distribution function, [sigma > 0]. *)

val normal_quantile : mu:float -> sigma:float -> float -> float
(** Inverse Gaussian CDF for p in (0, 1).  Acklam's rational approximation
    refined with one Halley step (~1e-15 absolute on the unit normal). *)

val log_normal_pdf : mu:float -> sigma:float -> float -> float
(** Log of {!normal_pdf}, stable in the tails. *)
