(** One-dimensional numerical quadrature for the Bayes-error integrals. *)

val simpson : ?eps:float -> ?max_depth:int -> (float -> float) -> lo:float -> hi:float -> float
(** Adaptive Simpson on a finite interval.  [eps] is the absolute tolerance
    per panel (default 1e-10), [max_depth] the recursion cap (default 50).
    Handles [lo > hi] by sign flip. *)

val trapezoid : (float -> float) -> lo:float -> hi:float -> n:int -> float
(** Fixed-grid trapezoid rule with [n >= 1] panels; useful when the
    integrand is cheap and smoothness is unknown. *)
