let same_strict_sign a b = (a > 0.0 && b > 0.0) || (a < 0.0 && b < 0.0)

let bisect ?(eps = 1e-12) ?(max_iter = 200) f ~lo ~hi =
  let flo = f lo and fhi = f hi in
  if flo = 0.0 then lo
  else if fhi = 0.0 then hi
  else if same_strict_sign flo fhi then
    invalid_arg "Rootfind.bisect: no sign change on bracket"
  else begin
    let lo = ref lo and hi = ref hi and flo = ref flo in
    let i = ref 0 in
    while !hi -. !lo > eps *. (1.0 +. Float.abs !lo) && !i < max_iter do
      let mid = 0.5 *. (!lo +. !hi) in
      let fmid = f mid in
      if fmid = 0.0 then begin
        lo := mid;
        hi := mid
      end
      else if same_strict_sign !flo fmid then begin
        lo := mid;
        flo := fmid
      end
      else hi := mid;
      incr i
    done;
    0.5 *. (!lo +. !hi)
  end

let brent ?(eps = 1e-13) ?(max_iter = 200) f ~lo ~hi =
  let a = ref lo and b = ref hi in
  let fa = ref (f !a) and fb = ref (f !b) in
  if !fa = 0.0 then !a
  else if !fb = 0.0 then !b
  else if same_strict_sign !fa !fb then
    invalid_arg "Rootfind.brent: no sign change on bracket"
  else begin
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) and e = ref (!b -. !a) in
    let result = ref nan in
    let iter = ref 0 in
    while Float.is_nan !result && !iter < max_iter do
      incr iter;
      if Float.abs !fc < Float.abs !fb then begin
        a := !b; b := !c; c := !a;
        fa := !fb; fb := !fc; fc := !fa
      end;
      let tol = (2.0 *. epsilon_float *. Float.abs !b) +. (0.5 *. eps) in
      let xm = 0.5 *. (!c -. !b) in
      if Float.abs xm <= tol || !fb = 0.0 then result := !b
      else begin
        if Float.abs !e >= tol && Float.abs !fa > Float.abs !fb then begin
          let s = !fb /. !fa in
          let p, q =
            if !a = !c then
              (* secant *)
              (2.0 *. xm *. s, 1.0 -. s)
            else begin
              (* inverse quadratic *)
              let q = !fa /. !fc and r = !fb /. !fc in
              ( s *. ((2.0 *. xm *. q *. (q -. r)) -. ((!b -. !a) *. (r -. 1.0))),
                (q -. 1.0) *. (r -. 1.0) *. (s -. 1.0) )
            end
          in
          let p, q = if p > 0.0 then (p, -.q) else (-.p, q) in
          if
            2.0 *. p < Float.min (3.0 *. xm *. q -. Float.abs (tol *. q))
                         (Float.abs (!e *. q))
          then begin
            e := !d;
            d := p /. q
          end
          else begin
            d := xm;
            e := xm
          end
        end
        else begin
          d := xm;
          e := xm
        end;
        a := !b;
        fa := !fb;
        b := !b +. (if Float.abs !d > tol then !d else if xm > 0.0 then tol else -.tol);
        fb := f !b;
        if same_strict_sign !fb !fc then begin
          c := !a;
          fc := !fa;
          d := !b -. !a;
          e := !d
        end
      end
    done;
    if Float.is_nan !result then !b else !result
  end

let find_bracket f ~center ~step ?(max_expand = 60) () =
  if step <= 0.0 then invalid_arg "Rootfind.find_bracket: step <= 0";
  let fc = f center in
  if fc = 0.0 then Some (center, center)
  else
    let rec expand step k =
      if k > max_expand then None
      else
        let lo = center -. step and hi = center +. step in
        let flo = f lo and fhi = f hi in
        if not (same_strict_sign fc flo) then Some (lo, center)
        else if not (same_strict_sign fc fhi) then Some (center, hi)
        else expand (2.0 *. step) (k + 1)
    in
    expand step 0
