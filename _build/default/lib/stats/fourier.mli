(** Radix-2 FFT and spectral estimation.

    Built for the spectral traffic-analysis ablation: a padded stream is a
    near-periodic pulse train, and payload-correlated jitter modulates the
    harmonic structure of its inter-arrival series.  The periodogram turns
    that into a feature the adversary can classify on, complementing the
    paper's three time-domain statistics. *)

val fft : re:float array -> im:float array -> unit
(** In-place decimation-in-time FFT.  Arrays must have equal power-of-two
    length; raises [Invalid_argument] otherwise. *)

val ifft : re:float array -> im:float array -> unit
(** Inverse FFT (normalized by 1/n). *)

val next_pow2 : int -> int
(** Smallest power of two >= n (n >= 1). *)

val periodogram : float array -> float array
(** [periodogram xs] removes the sample mean, zero-pads to a power of two,
    and returns the one-sided power spectrum |X_k|²/n for
    k = 0 .. n_fft/2 (inclusive).  Raises on input shorter than 2. *)

val dominant_frequency : sample_rate:float -> float array -> float * float
(** [(frequency_hz, power)] of the strongest non-DC periodogram bin of a
    series sampled at [sample_rate].  Raises on input shorter than 4. *)

val autocorrelation_fft : float array -> float array
(** Biased sample autocorrelation for all lags 0..n-1 via Wiener–Khinchin
    (FFT of the periodogram); autocorrelation.(0) = 1 unless the series is
    constant (then all zeros).  O(n log n). *)

val spectral_entropy : float array -> float
(** Shannon entropy (nats) of the normalized non-DC periodogram — a
    scalar spectral-flatness feature: white noise scores high, a pure
    tone scores near 0.  Raises on input shorter than 4. *)
