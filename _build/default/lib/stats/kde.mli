(** Gaussian kernel density estimation.

    The adversary's training phase (paper §3.3, citing Silverman 1986) fits
    the class-conditional PDF of each feature with a Gaussian kernel
    estimator; histograms are "too coarse" for the Bayes rule.  Evaluation
    is exact O(n) per query — training sets here are a few hundred feature
    values, so no tree acceleration is needed. *)

type t

val fit : ?bandwidth:float -> float array -> t
(** [fit xs] fits a KDE.  Default bandwidth is Silverman's rule of thumb,
    h = 0.9 * min(std, IQR/1.34) * n^(-1/5), with a floor that keeps the
    estimator proper when the data are (nearly) constant.  Raises on empty
    input or non-positive explicit [bandwidth]. *)

val bandwidth : t -> float
val sample_size : t -> int

val pdf : t -> float -> float
(** Density estimate at a point (always > 0). *)

val log_pdf : t -> float -> float
(** Log-density via log-sum-exp; stable far in the tails where {!pdf}
    underflows to 0. *)

val cdf : t -> float -> float
(** Smoothed distribution function (mean of kernel CDFs). *)

val support : t -> float * float
(** [(lo, hi)] range covering all mass except ~1e-9 per tail: data range
    widened by 6 bandwidths.  Used to bracket threshold searches. *)
