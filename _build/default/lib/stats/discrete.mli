(** Discrete distributions (pmf/cdf/sampling), primarily for the
    packet-counting analytics: window counts of an unpadded Poisson stream
    are Poisson, so the counting attack's exact Bayes detection rate is a
    sum over pmfs rather than an integral. *)

type t = {
  name : string;
  pmf : int -> float;
  log_pmf : int -> float;
  cdf : int -> float;          (** P(X <= k) *)
  mean : float;
  variance : float;
  sample : Prng.Rng.t -> int;
}

val poisson : mean:float -> t
(** [mean > 0]. *)

val binomial : n:int -> p:float -> t
(** [n >= 0], [p in [0,1]]. *)

val geometric : p:float -> t
(** Failures before first success; [p in (0,1]]. *)

val bayes_detection_two : t -> t -> ?p0:float -> ?k_max:int -> unit -> float
(** Exact Bayes detection rate between two discrete laws with priors
    (p0, 1-p0): Σ_k max(p0·pmf₀(k), p1·pmf₁(k)), truncated at [k_max]
    (default: far enough beyond both means + 12 std-devs that the
    remainder is negligible). *)
