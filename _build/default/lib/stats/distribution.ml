type t = {
  name : string;
  pdf : float -> float;
  log_pdf : float -> float;
  cdf : float -> float;
  quantile : float -> float;
  mean : float;
  variance : float;
  sample : Prng.Rng.t -> float;
}

let check_p p = if p <= 0.0 || p >= 1.0 then invalid_arg "Distribution.quantile: p out of (0,1)"

let normal ~mu ~sigma =
  if sigma <= 0.0 then invalid_arg "Distribution.normal: sigma <= 0";
  {
    name = Printf.sprintf "normal(%.6g,%.6g)" mu sigma;
    pdf = Special.normal_pdf ~mu ~sigma;
    log_pdf = Special.log_normal_pdf ~mu ~sigma;
    cdf = Special.normal_cdf ~mu ~sigma;
    quantile = (fun p -> check_p p; Special.normal_quantile ~mu ~sigma p);
    mean = mu;
    variance = sigma *. sigma;
    sample = (fun rng -> Prng.Sampler.normal rng ~mu ~sigma);
  }

let uniform ~lo ~hi =
  if lo >= hi then invalid_arg "Distribution.uniform: lo >= hi";
  let w = hi -. lo in
  {
    name = Printf.sprintf "uniform(%.6g,%.6g)" lo hi;
    pdf = (fun x -> if x < lo || x > hi then 0.0 else 1.0 /. w);
    log_pdf =
      (fun x -> if x < lo || x > hi then Float.neg_infinity else -.log w);
    cdf =
      (fun x ->
        if x <= lo then 0.0 else if x >= hi then 1.0 else (x -. lo) /. w);
    quantile = (fun p -> check_p p; lo +. (p *. w));
    mean = 0.5 *. (lo +. hi);
    variance = w *. w /. 12.0;
    sample = (fun rng -> Prng.Sampler.uniform rng ~lo ~hi);
  }

let exponential ~rate =
  if rate <= 0.0 then invalid_arg "Distribution.exponential: rate <= 0";
  {
    name = Printf.sprintf "exponential(%.6g)" rate;
    pdf = (fun x -> if x < 0.0 then 0.0 else rate *. exp (-.rate *. x));
    log_pdf =
      (fun x -> if x < 0.0 then Float.neg_infinity else log rate -. (rate *. x));
    cdf = (fun x -> if x <= 0.0 then 0.0 else 1.0 -. exp (-.rate *. x));
    quantile = (fun p -> check_p p; -.log (1.0 -. p) /. rate);
    mean = 1.0 /. rate;
    variance = 1.0 /. (rate *. rate);
    sample = (fun rng -> Prng.Sampler.exponential rng ~rate);
  }

(* Marsaglia–Tsang squeeze for Gamma(shape >= 1); boost for shape < 1. *)
let rec gamma_sample rng ~shape ~scale =
  if shape < 1.0 then
    let u = Prng.Rng.float_pos rng in
    gamma_sample rng ~shape:(shape +. 1.0) ~scale *. (u ** (1.0 /. shape))
  else begin
    let d = shape -. (1.0 /. 3.0) in
    let c = 1.0 /. sqrt (9.0 *. d) in
    let rec draw () =
      let x = Prng.Sampler.normal rng ~mu:0.0 ~sigma:1.0 in
      let v = 1.0 +. (c *. x) in
      if v <= 0.0 then draw ()
      else
        let v = v *. v *. v in
        let u = Prng.Rng.float_pos rng in
        if u < 1.0 -. (0.0331 *. x *. x *. x *. x) then d *. v
        else if log u < (0.5 *. x *. x) +. (d *. (1.0 -. v +. log v)) then d *. v
        else draw ()
    in
    draw () *. scale
  end

let gamma ~shape ~scale =
  if shape <= 0.0 then invalid_arg "Distribution.gamma: shape <= 0";
  if scale <= 0.0 then invalid_arg "Distribution.gamma: scale <= 0";
  let log_norm = Special.log_gamma shape +. (shape *. log scale) in
  let cdf x = if x <= 0.0 then 0.0 else Special.gamma_p ~a:shape ~x:(x /. scale) in
  let mean = shape *. scale in
  let sd = sqrt shape *. scale in
  let quantile p =
    check_p p;
    (* Bracket the root around a normal-approximation start. *)
    let guess = Float.max (mean +. (sd *. Special.normal_quantile ~mu:0.0 ~sigma:1.0 p)) (1e-12 *. scale) in
    match
      Rootfind.find_bracket (fun x -> cdf (Float.max x 0.0) -. p) ~center:guess
        ~step:(Float.max (0.1 *. sd) (1e-9 *. scale)) ()
    with
    | Some (lo, hi) ->
        Float.max 0.0 (Rootfind.brent (fun x -> cdf (Float.max x 0.0) -. p) ~lo ~hi)
    | None -> guess
  in
  {
    name = Printf.sprintf "gamma(%.6g,%.6g)" shape scale;
    pdf =
      (fun x ->
        if x <= 0.0 then 0.0
        else exp (((shape -. 1.0) *. log x) -. (x /. scale) -. log_norm));
    log_pdf =
      (fun x ->
        if x <= 0.0 then Float.neg_infinity
        else ((shape -. 1.0) *. log x) -. (x /. scale) -. log_norm);
    cdf;
    quantile;
    mean;
    variance = shape *. scale *. scale;
    sample = (fun rng -> gamma_sample rng ~shape ~scale);
  }

let chi_square ~dof =
  if dof < 1 then invalid_arg "Distribution.chi_square: dof < 1";
  let g = gamma ~shape:(float_of_int dof /. 2.0) ~scale:2.0 in
  { g with name = Printf.sprintf "chi2(%d)" dof }

let scaled_chi_square ~dof ~sigma2 =
  if dof < 1 then invalid_arg "Distribution.scaled_chi_square: dof < 1";
  if sigma2 <= 0.0 then invalid_arg "Distribution.scaled_chi_square: sigma2 <= 0";
  let g =
    gamma ~shape:(float_of_int dof /. 2.0)
      ~scale:(2.0 *. sigma2 /. float_of_int dof)
  in
  { g with name = Printf.sprintf "sample_variance(dof=%d,sigma2=%.6g)" dof sigma2 }

let lognormal ~mu ~sigma =
  if sigma <= 0.0 then invalid_arg "Distribution.lognormal: sigma <= 0";
  let n = normal ~mu ~sigma in
  {
    name = Printf.sprintf "lognormal(%.6g,%.6g)" mu sigma;
    pdf = (fun x -> if x <= 0.0 then 0.0 else n.pdf (log x) /. x);
    log_pdf =
      (fun x -> if x <= 0.0 then Float.neg_infinity else n.log_pdf (log x) -. log x);
    cdf = (fun x -> if x <= 0.0 then 0.0 else n.cdf (log x));
    quantile = (fun p -> exp (n.quantile p));
    mean = exp (mu +. (sigma *. sigma /. 2.0));
    variance =
      (exp (sigma *. sigma) -. 1.0) *. exp ((2.0 *. mu) +. (sigma *. sigma));
    sample = (fun rng -> exp (n.sample rng));
  }

let pareto ~shape ~scale =
  if shape <= 0.0 then invalid_arg "Distribution.pareto: shape <= 0";
  if scale <= 0.0 then invalid_arg "Distribution.pareto: scale <= 0";
  {
    name = Printf.sprintf "pareto(%.6g,%.6g)" shape scale;
    pdf =
      (fun x ->
        if x < scale then 0.0
        else shape *. (scale ** shape) /. (x ** (shape +. 1.0)));
    log_pdf =
      (fun x ->
        if x < scale then Float.neg_infinity
        else log shape +. (shape *. log scale) -. ((shape +. 1.0) *. log x));
    cdf = (fun x -> if x < scale then 0.0 else 1.0 -. ((scale /. x) ** shape));
    quantile = (fun p -> check_p p; scale /. ((1.0 -. p) ** (1.0 /. shape)));
    mean = (if shape > 1.0 then shape *. scale /. (shape -. 1.0) else Float.infinity);
    variance =
      (if shape > 2.0 then
         scale *. scale *. shape
         /. ((shape -. 1.0) *. (shape -. 1.0) *. (shape -. 2.0))
       else Float.infinity);
    sample = (fun rng -> Prng.Sampler.pareto rng ~shape ~scale);
  }
