type interval = { lo : float; hi : float }

let check_binomial ~successes ~trials ~confidence =
  if trials < 1 then invalid_arg "Confidence: trials < 1";
  if successes < 0 || successes > trials then
    invalid_arg "Confidence: successes out of [0, trials]";
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Confidence: confidence out of (0, 1)"

let z_of confidence =
  Special.normal_quantile ~mu:0.0 ~sigma:1.0 (1.0 -. ((1.0 -. confidence) /. 2.0))

let wilson ~successes ~trials ~confidence =
  check_binomial ~successes ~trials ~confidence;
  let z = z_of confidence in
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let center = (p +. (z2 /. (2.0 *. n))) /. denom in
  let half =
    z /. denom *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n)))
  in
  { lo = Float.max 0.0 (center -. half); hi = Float.min 1.0 (center +. half) }

let wald ~successes ~trials ~confidence =
  check_binomial ~successes ~trials ~confidence;
  let z = z_of confidence in
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let half = z *. sqrt (p *. (1.0 -. p) /. n) in
  { lo = Float.max 0.0 (p -. half); hi = Float.min 1.0 (p +. half) }

let mean_t xs ~confidence =
  if Array.length xs < 2 then invalid_arg "Confidence.mean_t: need n >= 2";
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Confidence: confidence out of (0, 1)";
  let n = float_of_int (Array.length xs) in
  let m = Descriptive.mean xs in
  let se = Descriptive.std xs /. sqrt n in
  let z = z_of confidence in
  { lo = m -. (z *. se); hi = m +. (z *. se) }

let contains i x = x >= i.lo && x <= i.hi
let width i = i.hi -. i.lo
