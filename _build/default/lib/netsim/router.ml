type t = {
  link : Link.t;
  mutable forwarded : int;
  mutable diverted : int;
}

let create sim ~bandwidth_bps ?propagation ?queue_limit ?(divert_cross = true)
    ~dest () =
  (* Tie the knot: the link's destination consults the router record to
     decide between forwarding and diverting. *)
  let rec t =
    lazy
      {
        link =
          Link.create sim ~bandwidth_bps ?propagation ?queue_limit
            ~dest:(fun pkt ->
              let t = Lazy.force t in
              if divert_cross && pkt.Packet.kind = Packet.Cross then
                t.diverted <- t.diverted + 1
              else begin
                t.forwarded <- t.forwarded + 1;
                dest pkt
              end)
            ();
        forwarded = 0;
        diverted = 0;
      }
  in
  Lazy.force t

let port t = Link.port t.link
let link t = t.link
let forwarded t = t.forwarded
let diverted t = t.diverted
