type t = { mutable stopped : bool; mutable generated : int }

let stop t = t.stopped <- true
let generated t = t.generated

let emit sim t ~size_bytes ~kind ~dest =
  t.generated <- t.generated + 1;
  dest (Packet.make ~kind ~size_bytes ~created:(Desim.Sim.now sim))

let spawn sim t ~next_delay ~action =
  (* Generic self-rescheduling source skeleton. *)
  let rec tick () =
    if not t.stopped then begin
      action ();
      ignore (Desim.Sim.after sim ~delay:(next_delay ()) tick : Desim.Sim.handle)
    end
  in
  ignore (Desim.Sim.after sim ~delay:(next_delay ()) tick : Desim.Sim.handle)

let cbr sim ~rate_pps ~size_bytes ~kind ~dest () =
  if rate_pps <= 0.0 then invalid_arg "Traffic_gen.cbr: rate <= 0";
  let t = { stopped = false; generated = 0 } in
  let period = 1.0 /. rate_pps in
  spawn sim t
    ~next_delay:(fun () -> period)
    ~action:(fun () -> emit sim t ~size_bytes ~kind ~dest);
  t

let poisson sim ~rng ~rate_pps ~size_bytes ~kind ~dest () =
  if rate_pps <= 0.0 then invalid_arg "Traffic_gen.poisson: rate <= 0";
  let t = { stopped = false; generated = 0 } in
  spawn sim t
    ~next_delay:(fun () -> Prng.Sampler.exponential rng ~rate:rate_pps)
    ~action:(fun () -> emit sim t ~size_bytes ~kind ~dest);
  t

let poisson_sized sim ~rng ~rate_pps ~size_of ~kind ~dest () =
  if rate_pps <= 0.0 then invalid_arg "Traffic_gen.poisson_sized: rate <= 0";
  let t = { stopped = false; generated = 0 } in
  spawn sim t
    ~next_delay:(fun () -> Prng.Sampler.exponential rng ~rate:rate_pps)
    ~action:(fun () -> emit sim t ~size_bytes:(size_of rng) ~kind ~dest);
  t

let on_off sim ~rng ~rate_on_pps ~mean_on ~mean_off ?pareto_shape ~size_bytes
    ~kind ~dest () =
  if rate_on_pps <= 0.0 then invalid_arg "Traffic_gen.on_off: rate <= 0";
  if mean_on <= 0.0 || mean_off <= 0.0 then
    invalid_arg "Traffic_gen.on_off: period means must be positive";
  let draw_period mean =
    match pareto_shape with
    | None -> Prng.Sampler.exponential rng ~rate:(1.0 /. mean)
    | Some shape ->
        if shape <= 1.0 then invalid_arg "Traffic_gen.on_off: pareto_shape <= 1";
        (* Pareto scale chosen so the mean equals [mean]. *)
        let scale = mean *. (shape -. 1.0) /. shape in
        Prng.Sampler.pareto rng ~shape ~scale
  in
  let t = { stopped = false; generated = 0 } in
  (* Alternate phases; within ON, Poisson emission until the phase budget
     is exhausted. *)
  let rec start_on () =
    if not t.stopped then begin
      let phase_end = Desim.Sim.now sim +. draw_period mean_on in
      let rec burst () =
        if not t.stopped then begin
          if Desim.Sim.now sim < phase_end then begin
            emit sim t ~size_bytes ~kind ~dest;
            ignore
              (Desim.Sim.after sim
                 ~delay:(Prng.Sampler.exponential rng ~rate:rate_on_pps)
                 burst
                : Desim.Sim.handle)
          end
          else start_off ()
        end
      in
      ignore
        (Desim.Sim.after sim
           ~delay:(Prng.Sampler.exponential rng ~rate:rate_on_pps)
           burst
          : Desim.Sim.handle)
    end
  and start_off () =
    if not t.stopped then
      ignore
        (Desim.Sim.after sim ~delay:(draw_period mean_off) start_on
          : Desim.Sim.handle)
  in
  start_on ();
  t

let modulated_poisson sim ~rng ~rate_fn ~rate_max ~size_bytes ~kind ~dest () =
  if rate_max <= 0.0 then invalid_arg "Traffic_gen.modulated_poisson: rate_max <= 0";
  let t = { stopped = false; generated = 0 } in
  (* Lewis–Shedler thinning: candidate events at rate_max, accepted with
     probability rate_fn(now)/rate_max. *)
  let rec tick () =
    if not t.stopped then begin
      let rate = rate_fn (Desim.Sim.now sim) in
      if rate < 0.0 || rate > rate_max then
        invalid_arg "Traffic_gen.modulated_poisson: rate_fn out of [0, rate_max]";
      if Prng.Rng.float rng < rate /. rate_max then
        emit sim t ~size_bytes ~kind ~dest;
      ignore
        (Desim.Sim.after sim
           ~delay:(Prng.Sampler.exponential rng ~rate:rate_max)
           tick
          : Desim.Sim.handle)
    end
  in
  ignore
    (Desim.Sim.after sim ~delay:(Prng.Sampler.exponential rng ~rate:rate_max) tick
      : Desim.Sim.handle);
  t
