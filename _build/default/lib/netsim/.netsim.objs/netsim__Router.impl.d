lib/netsim/router.ml: Lazy Link Packet
