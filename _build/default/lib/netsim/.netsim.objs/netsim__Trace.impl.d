lib/netsim/trace.ml: Array Fun List Printf String
