lib/netsim/router.mli: Desim Link
