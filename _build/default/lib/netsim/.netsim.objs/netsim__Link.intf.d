lib/netsim/link.mli: Desim Packet
