lib/netsim/fvec.mli:
