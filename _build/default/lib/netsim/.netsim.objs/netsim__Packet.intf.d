lib/netsim/packet.mli:
