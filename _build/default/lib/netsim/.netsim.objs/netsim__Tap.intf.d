lib/netsim/tap.mli: Desim Link Packet
