lib/netsim/trace.mli:
