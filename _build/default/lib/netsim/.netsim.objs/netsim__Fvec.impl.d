lib/netsim/fvec.ml: Array Stdlib
