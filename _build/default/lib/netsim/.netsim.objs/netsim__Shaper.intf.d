lib/netsim/shaper.mli: Desim Link Packet
