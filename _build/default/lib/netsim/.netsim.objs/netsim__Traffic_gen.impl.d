lib/netsim/traffic_gen.ml: Desim Packet Prng
