lib/netsim/tap.ml: Array Desim Fvec Link Packet
