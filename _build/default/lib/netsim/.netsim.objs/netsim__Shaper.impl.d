lib/netsim/shaper.ml: Desim Float Link Packet Queue
