lib/netsim/packet.ml:
