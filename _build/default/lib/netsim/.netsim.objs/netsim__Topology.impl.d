lib/netsim/topology.ml: Array Link List Option Packet Prng Router Tap Traffic_gen
