lib/netsim/traffic_gen.mli: Desim Link Packet Prng
