lib/netsim/link.ml: Desim Float Packet
