lib/netsim/topology.mli: Desim Link Prng Router Tap Traffic_gen
