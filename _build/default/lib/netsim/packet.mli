(** Network packets.

    The padded stream consists of [Payload] and [Dummy] packets of one
    constant size (paper §3.2 assumption (3)); [Cross] packets model the
    competing traffic that creates δ_net.  Contents are "encrypted": no
    component downstream of the sender gateway — in particular the
    adversary's tap — may branch on [kind] of a padded packet; the type is
    carried only for accounting and for tests. *)

type kind = Payload | Dummy | Cross

type t = {
  id : int;            (** globally unique, creation-ordered *)
  kind : kind;
  size_bytes : int;
  created : float;     (** simulation time of creation *)
}

val make : kind:kind -> size_bytes:int -> created:float -> t
(** Allocates a fresh id.  [size_bytes > 0]. *)

val kind_to_string : kind -> string
val is_padded : t -> bool
(** True for [Payload] and [Dummy] — the stream the adversary observes. *)
