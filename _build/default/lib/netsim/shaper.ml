type t = {
  sim : Desim.Sim.t;
  rate_pps : float;
  burst : float;
  dest : Link.port;
  queue : Packet.t Queue.t;
  mutable tokens : float;
  mutable last_refill : float;
  mutable drain_scheduled : bool;
  mutable forwarded : int;
}

let create sim ~rate_pps ?(burst = 1) ~dest () =
  if rate_pps <= 0.0 then invalid_arg "Shaper.create: rate <= 0";
  if burst < 1 then invalid_arg "Shaper.create: burst < 1";
  {
    sim;
    rate_pps;
    burst = float_of_int burst;
    dest;
    queue = Queue.create ();
    tokens = float_of_int burst;
    last_refill = Desim.Sim.now sim;
    drain_scheduled = false;
    forwarded = 0;
  }

let refill t =
  let now = Desim.Sim.now t.sim in
  t.tokens <-
    Float.min t.burst (t.tokens +. ((now -. t.last_refill) *. t.rate_pps));
  t.last_refill <- now

let rec drain t =
  refill t;
  if (not (Queue.is_empty t.queue)) && t.tokens >= 1.0 then begin
    t.tokens <- t.tokens -. 1.0;
    t.forwarded <- t.forwarded + 1;
    t.dest (Queue.pop t.queue);
    drain t
  end
  else if not (Queue.is_empty t.queue) then begin
    (* Wait exactly until the next token matures.  On wake, credit that
       token explicitly: floating-point refill over a tiny interval can
       round to just under 1.0 and would otherwise re-schedule a zero
       delay forever. *)
    let wait = (1.0 -. t.tokens) /. t.rate_pps in
    if not t.drain_scheduled then begin
      t.drain_scheduled <- true;
      ignore
        (Desim.Sim.after t.sim ~delay:wait (fun () ->
             t.drain_scheduled <- false;
             refill t;
             if t.tokens < 1.0 then t.tokens <- 1.0;
             drain t)
          : Desim.Sim.handle)
    end
  end

let send t pkt =
  Queue.push pkt t.queue;
  drain t

let port t = send t
let forwarded t = t.forwarded
let queue_depth t = Queue.length t.queue
