(** Output-queued store-and-forward router.

    Models one hop of the unprotected internetwork: every packet received on
    any input is forwarded onto one shared output link (FIFO, bounded
    queue).  Cross-traffic sources feeding the same router contend with the
    padded stream for the output link, which is how the Marconi ESR-5000
    experiment of the paper creates δ_net.  After traversing the link,
    cross packets can be diverted to a local sink instead of the next hop
    (mirroring the paper's Subnet D receiver). *)

type t

val create :
  Desim.Sim.t ->
  bandwidth_bps:float ->
  ?propagation:float ->
  ?queue_limit:int ->
  ?divert_cross:bool ->
  dest:Link.port ->
  unit ->
  t
(** [divert_cross] (default true): cross packets exit at this hop after
    transmission (they still consumed link capacity); padded packets
    continue to [dest]. *)

val port : t -> Link.port
(** Input port (all inputs are merged). *)

val link : t -> Link.t
(** The output link, for utilization/drops inspection. *)

val forwarded : t -> int
(** Packets delivered to [dest]. *)

val diverted : t -> int
(** Cross packets that exited at this hop. *)
