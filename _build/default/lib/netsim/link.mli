(** Point-to-point link with serialization and propagation delay.

    A link is a single transmitter: a packet occupies the wire for
    [size * 8 / bandwidth] seconds; packets arriving while the wire is busy
    wait in FIFO order.  This serialization queue behind cross traffic is
    precisely the source of the paper's δ_net disturbance. *)

type t

type port = Packet.t -> unit
(** A packet consumer, invoked at the packet's arrival instant. *)

val create :
  Desim.Sim.t ->
  bandwidth_bps:float ->
  ?propagation:float ->
  ?queue_limit:int ->
  dest:port ->
  unit ->
  t
(** [queue_limit] bounds the number of packets waiting or in transmission
    (default unbounded); beyond it packets are dropped and counted.
    [bandwidth_bps > 0], [propagation >= 0]. *)

val send : t -> Packet.t -> unit
(** Enqueue a packet for transmission at the current simulation time. *)

val port : t -> port
(** [send] as a port, for wiring into upstream components. *)

val sent : t -> int
(** Packets fully transmitted so far. *)

val dropped : t -> int
val queue_depth : t -> int
(** Packets currently waiting or in transmission. *)

val busy_until : t -> float
(** Time at which the transmitter frees up (<= now when idle). *)

val utilization : t -> float
(** Fraction of elapsed time (since creation) the wire was transmitting. *)
