type kind = Payload | Dummy | Cross

type t = { id : int; kind : kind; size_bytes : int; created : float }

let counter = ref 0

let make ~kind ~size_bytes ~created =
  if size_bytes <= 0 then invalid_arg "Packet.make: size_bytes <= 0";
  incr counter;
  { id = !counter; kind; size_bytes; created }

let kind_to_string = function
  | Payload -> "payload"
  | Dummy -> "dummy"
  | Cross -> "cross"

let is_padded t = match t.kind with Payload | Dummy -> true | Cross -> false
