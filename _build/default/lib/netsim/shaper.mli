(** Token-bucket traffic shaper.

    Used in two roles: (a) as a building block for rate-enforced cross
    traffic (a shaped aggregate perturbs the padded stream differently
    from a free Poisson stream), and (b) as a strawman countermeasure —
    shaping payload to a rate cap is *not* padding: it clips bursts but
    transmits nothing when idle, so the rate remains visible.

    Tokens accrue at [rate_pps] up to [burst] tokens; a packet needs one
    token.  When the bucket is empty the packet waits in FIFO order (no
    shaper drops — back-pressure only). *)

type t

val create :
  Desim.Sim.t ->
  rate_pps:float ->
  ?burst:int ->
  dest:Link.port ->
  unit ->
  t
(** [burst] defaults to 1 (pure spacing).  [rate_pps > 0], [burst >= 1]. *)

val send : t -> Packet.t -> unit
val port : t -> Link.port
val forwarded : t -> int
val queue_depth : t -> int
