type t = {
  sim : Desim.Sim.t;
  accept : Packet.t -> bool;
  dest : Link.port;
  times : Fvec.t;
  sizes : Fvec.t;
}

let create sim ?(accept = Packet.is_padded) ~dest () =
  {
    sim;
    accept;
    dest;
    times = Fvec.create ~capacity:1024 ();
    sizes = Fvec.create ~capacity:1024 ();
  }

let port t pkt =
  if t.accept pkt then begin
    Fvec.push t.times (Desim.Sim.now t.sim);
    Fvec.push t.sizes (float_of_int pkt.Packet.size_bytes)
  end;
  t.dest pkt

let count t = Fvec.length t.times
let timestamps t = Fvec.to_array t.times
let sizes t = Array.map int_of_float (Fvec.to_array t.sizes)

let piats t =
  let n = Fvec.length t.times in
  if n < 2 then [||]
  else
    Array.init (n - 1) (fun i -> Fvec.get t.times (i + 1) -. Fvec.get t.times i)

let clear t =
  Fvec.clear t.times;
  Fvec.clear t.sizes
