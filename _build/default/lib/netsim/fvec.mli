(** Growable float vector — timestamp traces can run to millions of entries,
    so boxing-free storage matters. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val push : t -> float -> unit
val get : t -> int -> float
(** Raises on out-of-range index. *)

val to_array : t -> float array
val last : t -> float option
val clear : t -> unit
