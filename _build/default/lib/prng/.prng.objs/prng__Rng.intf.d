lib/prng/rng.mli:
