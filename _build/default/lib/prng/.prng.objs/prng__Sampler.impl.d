lib/prng/sampler.ml: Array Float Rng Stdlib
