lib/prng/rng.ml: Char Int64 String
