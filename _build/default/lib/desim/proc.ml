open Effect
open Effect.Deep

(* Effects are interpreted against the simulator captured by the active
   [spawn] handler, so each process is bound to one Sim.t. *)
type _ Effect.t +=
  | Sleep : float -> unit Effect.t
  | Now : float Effect.t
  | Block : ((unit -> unit) -> unit) -> unit Effect.t
        (** [Block register]: hand the handler a resumption thunk to stash
            (e.g. in a mailbox's waiter queue); the process stays
            suspended until someone calls the thunk. *)

let sleep d =
  if d < 0.0 then invalid_arg "Proc.sleep: negative duration";
  perform (Sleep d)

let now () = perform Now

let spawn sim body =
  let step (f : unit -> unit) =
    match_with f ()
      {
        retc = (fun () -> ());
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Sleep d ->
                Some
                  (fun (k : (a, _) continuation) ->
                    ignore
                      (Sim.after sim ~delay:d (fun () -> continue k ())
                        : Sim.handle))
            | Now -> Some (fun (k : (a, _) continuation) -> continue k (Sim.now sim))
            | Block register ->
                Some
                  (fun (k : (a, _) continuation) ->
                    (* The resumption must re-enter through the event queue
                       so wake-ups keep deterministic ordering relative to
                       other events at the same instant. *)
                    register (fun () ->
                        ignore
                          (Sim.after sim ~delay:0.0 (fun () -> continue k ())
                            : Sim.handle)))
            | _ -> None);
      }
  in
  ignore (Sim.after sim ~delay:0.0 (fun () -> step body) : Sim.handle)

module Mailbox = struct
  type 'a t = {
    messages : 'a Queue.t;
    waiters : (unit -> unit) Queue.t;
  }

  let create () = { messages = Queue.create (); waiters = Queue.create () }

  let send t msg =
    Queue.push msg t.messages;
    if not (Queue.is_empty t.waiters) then (Queue.pop t.waiters) ()

  let try_recv t =
    if Queue.is_empty t.messages then None else Some (Queue.pop t.messages)

  let rec recv t =
    match try_recv t with
    | Some msg -> msg
    | None ->
        perform (Block (fun resume -> Queue.push resume t.waiters));
        (* A message was announced, but another consumer (or try_recv) may
           have raced us to it at the same instant — loop. *)
        recv t

  let length t = Queue.length t.messages
end
