lib/desim/proc.mli: Sim
