lib/desim/sim.mli:
