lib/desim/event_queue.ml: Array Float Obj
