lib/desim/proc.ml: Effect Queue Sim
