lib/desim/sim.ml: Event_queue Float
