(** Process-style simulation on top of {!Sim}, using OCaml 5 effects.

    Callback scheduling (the {!Sim} API) is fast but turns sequential
    protocol logic inside out.  A {e process} is plain sequential code
    that calls {!sleep} and blocks on {!Mailbox}es; the effect handler
    suspends the continuation and re-schedules it through the same event
    queue, so processes and raw callbacks compose freely in one
    simulation and determinism is unchanged.

    All operations marked "inside a process" must be called from code
    running under {!spawn}; calling them elsewhere raises
    [Effect.Unhandled]. *)

val spawn : Sim.t -> (unit -> unit) -> unit
(** Start a process at the current simulation time.  The body runs in
    steps interleaved with other events; an exception escaping the body
    propagates out of the {!Sim.run_until} that was driving it. *)

val sleep : float -> unit
(** Inside a process: suspend for a non-negative simulated duration. *)

val now : unit -> float
(** Inside a process: current simulation time. *)

module Mailbox : sig
  type 'a t
  (** Unbounded FIFO channel between processes (and callbacks). *)

  val create : unit -> 'a t

  val send : 'a t -> 'a -> unit
  (** Never blocks; wakes the longest-waiting receiver, if any.  Callable
      from anywhere (including plain callbacks). *)

  val recv : 'a t -> 'a
  (** Inside a process: take the oldest message, suspending until one is
      available. *)

  val try_recv : 'a t -> 'a option
  (** Non-blocking take; callable from anywhere. *)

  val length : 'a t -> int
  (** Messages currently queued (not counting waiting receivers). *)
end
