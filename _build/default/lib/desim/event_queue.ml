type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  (* heap.(0) is unused padding until first push; [len] tracks live size *)
  mutable len : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; len = 0; next_seq = 0 }
let is_empty t = t.len = 0
let size t = t.len

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.heap in
  if t.len = cap then begin
    let new_cap = if cap = 0 then 16 else cap * 2 in
    (* Dummy from an existing entry or a placeholder; never read beyond len. *)
    let dummy =
      if cap > 0 then t.heap.(0)
      else { time = 0.0; seq = -1; payload = Obj.magic 0 }
    in
    let heap = Array.make new_cap dummy in
    Array.blit t.heap 0 heap 0 t.len;
    t.heap <- heap
  end

let push t ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  grow t;
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  (* sift up *)
  let i = ref t.len in
  t.len <- t.len + 1;
  t.heap.(!i) <- entry;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if earlier t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.heap.(0) <- t.heap.(t.len);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.len && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.heap.(!smallest) in
          t.heap.(!smallest) <- t.heap.(!i);
          t.heap.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.len = 0 then None else Some t.heap.(0).time
