(** Priority queue of timestamped events.

    Binary min-heap ordered by (time, sequence number): ties in time are
    broken by insertion order, which makes simulations deterministic — a
    hard requirement for reproducible figures. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** Raises [Invalid_argument] on NaN time. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, [None] when empty. *)

val peek_time : 'a t -> float option
(** Earliest timestamp without removing it. *)
