let total_padding = ref 0

let pad_port ~target ~dest =
  if target <= 0 then invalid_arg "Size_padding.pad_port: target <= 0";
  fun pkt ->
    let size = pkt.Netsim.Packet.size_bytes in
    if size > target then
      invalid_arg "Size_padding: packet exceeds the padding target";
    if size = target then dest pkt
    else begin
      total_padding := !total_padding + (target - size);
      dest
        (Netsim.Packet.make ~kind:pkt.Netsim.Packet.kind ~size_bytes:target
           ~created:pkt.Netsim.Packet.created)
    end

let padded_bytes () = !total_padding
let reset_padded_bytes () = total_padding := 0
