(** Threshold mix gateway — the Chaum (1981) baseline the paper's related
    work starts from (§2).

    The mix collects payload packets and flushes a batch when either
    [threshold] packets are queued or [timeout] has elapsed since the
    first packet of the batch arrived; a timed-out batch is completed to
    the threshold with dummies so every flush is exactly [threshold]
    packets (the "users send dummy messages" convention).  Batching hides
    *which* message is which, but the flush epochs still track the payload
    rate — the reason rate-hiding needs link padding on top of mixing,
    which is precisely the paper's subject.  This module exists to measure
    that leak with the same adversary machinery. *)

type t

val create :
  Desim.Sim.t ->
  rng:Prng.Rng.t ->
  ?threshold:int ->
  ?timeout:float ->
  ?flush_spacing:float ->
  ?packet_size:int ->
  dest:Netsim.Link.port ->
  unit ->
  t
(** Defaults: threshold 8 packets, timeout 500 ms, 1 ms spacing between
    the packets of a flushed batch.  [threshold >= 1], [timeout > 0],
    [flush_spacing >= 0]. *)

val input : t -> Netsim.Link.port
(** Payload entry; raises on non-payload packets. *)

val stop : t -> unit
val flushes : t -> int
val payload_sent : t -> int
val dummy_sent : t -> int

val overhead : t -> float
(** Dummy fraction of emitted packets. *)
