let check ~payload_rate_pps ~timer_mean =
  if payload_rate_pps < 0.0 then invalid_arg "Qos: payload_rate < 0";
  if timer_mean <= 0.0 then invalid_arg "Qos: timer_mean <= 0"

let utilization ~payload_rate_pps ~timer_mean =
  check ~payload_rate_pps ~timer_mean;
  payload_rate_pps *. timer_mean

let is_stable ~payload_rate_pps ~timer_mean =
  utilization ~payload_rate_pps ~timer_mean < 1.0

let mean_delay ~payload_rate_pps ~timer_mean =
  let rho = utilization ~payload_rate_pps ~timer_mean in
  if rho >= 1.0 then
    invalid_arg "Qos.mean_delay: unstable (payload faster than the timer)";
  (timer_mean /. 2.0) +. (timer_mean *. rho /. (2.0 *. (1.0 -. rho)))

let delay_quantile ~payload_rate_pps ~timer_mean ~p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Qos.delay_quantile: p out of (0,1)";
  let rho = utilization ~payload_rate_pps ~timer_mean in
  if rho >= 1.0 then invalid_arg "Qos.delay_quantile: unstable";
  let mean = mean_delay ~payload_rate_pps ~timer_mean in
  (* Exponential-tail surrogate with the waiting-time scale; exact M/D/1
     quantiles need the Crommelin series, overkill for budgeting. *)
  let scale = timer_mean /. (2.0 *. (1.0 -. rho)) in
  mean -. (scale *. log (1.0 -. p))

let min_timer_rate ~payload_rate_pps ~max_mean_delay =
  if payload_rate_pps < 0.0 then invalid_arg "Qos: payload_rate < 0";
  if max_mean_delay <= 0.0 then invalid_arg "Qos: max_mean_delay <= 0";
  (* mean_delay is decreasing in the timer rate f = 1/tau; bracket and
     bisect on f above the stability floor. *)
  let floor_rate = payload_rate_pps +. 1e-9 in
  let delay_at f = mean_delay ~payload_rate_pps ~timer_mean:(1.0 /. f) in
  let hi = ref (Float.max (2.0 *. floor_rate) (2.0 /. max_mean_delay)) in
  let guard = ref 0 in
  while delay_at !hi > max_mean_delay && !guard < 200 do
    hi := !hi *. 2.0;
    incr guard
  done;
  if delay_at !hi > max_mean_delay then
    invalid_arg "Qos.min_timer_rate: bound unachievable";
  let lo = ref (Float.max floor_rate 1e-9) in
  if delay_at !lo <= max_mean_delay then !lo
  else begin
    for _ = 1 to 200 do
      let mid = 0.5 *. (!lo +. !hi) in
      if delay_at mid > max_mean_delay then lo := mid else hi := mid
    done;
    !hi
  end

let overhead ~payload_rate_pps ~timer_mean =
  let rho = utilization ~payload_rate_pps ~timer_mean in
  Float.max 0.0 (Float.min 1.0 (1.0 -. rho))
