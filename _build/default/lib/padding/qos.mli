(** QoS accounting for padded flows — the NetCamo angle (paper §2, ref [9]).

    A CIT gateway serves payload at timer epochs: one payload packet per
    fire.  The payload therefore sees an M/D/1-like queue with
    deterministic "service" τ (the timer period).  The paper's NetCamo
    work stresses that the padding rate bounds both the bandwidth overhead
    and the worst-case payload delay; this module provides the analytic
    side, validated against the simulated receiver latency in the tests. *)

val utilization : payload_rate_pps:float -> timer_mean:float -> float
(** ρ = λ·τ.  Stability requires ρ < 1: the timer must fire at least as
    often as payload arrives. *)

val is_stable : payload_rate_pps:float -> timer_mean:float -> bool

val mean_delay : payload_rate_pps:float -> timer_mean:float -> float
(** Expected payload sojourn time for Poisson payload of rate λ behind a
    CIT timer of period τ:

      E\[D\] = τ/2  (residual wait for the next fire)
            + τ·ρ/(2(1−ρ))  (M/D/1 queueing)
            + 0             (transmission is accounted by the link model)

    Raises [Invalid_argument] if unstable (ρ >= 1). *)

val delay_quantile :
  payload_rate_pps:float -> timer_mean:float -> p:float -> float
(** Approximate p-quantile of the sojourn time using the exponential-tail
    (large-deviations) form D_p ≈ E[W] − ln(1−p)·σ_eff with the M/D/1
    effective scale; p in (0, 1).  Coarse but monotone and finite —
    intended for budgeting, not exactness. *)

val min_timer_rate :
  payload_rate_pps:float -> max_mean_delay:float -> float
(** Smallest timer frequency 1/τ (fires per second) such that the mean
    delay bound holds: the design-side inverse of {!mean_delay}.  Raises
    if the bound is unachievable ([max_mean_delay <= 0]). *)

val overhead : payload_rate_pps:float -> timer_mean:float -> float
(** Dummy fraction 1 − ρ (clamped), same as
    {!Analytical.Design.overhead_fraction} but kept here so the padding
    layer is self-contained. *)
