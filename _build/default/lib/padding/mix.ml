type t = {
  sim : Desim.Sim.t;
  rng : Prng.Rng.t;
  threshold : int;
  timeout : float;
  flush_spacing : float;
  packet_size : int;
  dest : Netsim.Link.port;
  queue : Netsim.Packet.t Queue.t;
  mutable timeout_handle : Desim.Sim.handle option;
  mutable flushes : int;
  mutable payload_sent : int;
  mutable dummy_sent : int;
  mutable stopped : bool;
}

let cancel_timeout t =
  match t.timeout_handle with
  | Some h ->
      Desim.Sim.cancel h;
      t.timeout_handle <- None
  | None -> ()

let flush t =
  if not t.stopped then begin
    cancel_timeout t;
    t.flushes <- t.flushes + 1;
    let now = Desim.Sim.now t.sim in
    (* Emit exactly [threshold] packets: the queued batch (in shuffled
       order — the mix's whole point) completed with dummies. *)
    let batch = Array.make t.threshold None in
    let k = ref 0 in
    while (not (Queue.is_empty t.queue)) && !k < t.threshold do
      batch.(!k) <- Some (Queue.pop t.queue);
      incr k
    done;
    Prng.Sampler.shuffle t.rng batch;
    Array.iteri
      (fun i slot ->
        let pkt =
          match slot with
          | Some p ->
              t.payload_sent <- t.payload_sent + 1;
              p
          | None ->
              t.dummy_sent <- t.dummy_sent + 1;
              Netsim.Packet.make ~kind:Netsim.Packet.Dummy
                ~size_bytes:t.packet_size ~created:now
        in
        ignore
          (Desim.Sim.at t.sim
             ~time:(now +. (float_of_int i *. t.flush_spacing))
             (fun () -> t.dest pkt)
            : Desim.Sim.handle))
      batch
  end

let create sim ~rng ?(threshold = 8) ?(timeout = 0.5) ?(flush_spacing = 1e-3)
    ?(packet_size = 500) ~dest () =
  if threshold < 1 then invalid_arg "Mix.create: threshold < 1";
  if timeout <= 0.0 then invalid_arg "Mix.create: timeout <= 0";
  if flush_spacing < 0.0 then invalid_arg "Mix.create: flush_spacing < 0";
  if packet_size <= 0 then invalid_arg "Mix.create: packet_size <= 0";
  {
    sim;
    rng;
    threshold;
    timeout;
    flush_spacing;
    packet_size;
    dest;
    queue = Queue.create ();
    timeout_handle = None;
    flushes = 0;
    payload_sent = 0;
    dummy_sent = 0;
    stopped = false;
  }

let input t pkt =
  if pkt.Netsim.Packet.kind <> Netsim.Packet.Payload then
    invalid_arg "Mix.input: only payload packets enter the mix";
  if not t.stopped then begin
    Queue.push pkt t.queue;
    if Queue.length t.queue >= t.threshold then flush t
    else if t.timeout_handle = None then
      t.timeout_handle <-
        Some (Desim.Sim.after t.sim ~delay:t.timeout (fun () ->
                  t.timeout_handle <- None;
                  flush t))
  end

let stop t =
  cancel_timeout t;
  t.stopped <- true

let flushes t = t.flushes
let payload_sent t = t.payload_sent
let dummy_sent t = t.dummy_sent

let overhead t =
  let total = t.payload_sent + t.dummy_sent in
  if total = 0 then 0.0 else float_of_int t.dummy_sent /. float_of_int total
