(** Receiver security gateway (the paper's GW2).

    Strips dummy packets, forwards payload into the protected subnet, and
    keeps the QoS accounting (payload latency) that the paper's NetCamo
    line of work cares about.  Cross packets must have been diverted
    upstream; receiving one raises, as it would indicate a mis-wired
    topology. *)

type t

val create : Desim.Sim.t -> ?dest:(Netsim.Packet.t -> unit) -> unit -> t
(** [dest] receives payload packets after dummy stripping (default: drop
    into a counter-only sink). *)

val port : t -> Netsim.Link.port
val payload_received : t -> int
val dummy_received : t -> int

val mean_payload_latency : t -> float
(** Mean of (arrival time - creation time) over payload packets; 0.0 when
    none arrived yet. *)

val max_payload_latency : t -> float
