type context = {
  fire_time : float;
  sends_payload : bool;
  arrivals_in_window : int;
}

type t =
  | None_
  | Parametric of { mu : float; sigma : float }
  | Mechanistic of {
      context_switch_mu : float;
      context_switch_sigma : float;
      payload_extra_mu : float;
      payload_extra_sigma : float;
      irq_delay_mean : float;
    }

let irq_window = 50e-6

let none = None_

let parametric ~mu ~sigma =
  if mu < 0.0 then invalid_arg "Jitter.parametric: mu < 0";
  if sigma < 0.0 then invalid_arg "Jitter.parametric: sigma < 0";
  Parametric { mu; sigma }

let mechanistic ?(context_switch_mu = 3e-6) ?(context_switch_sigma = 1.0e-6)
    ?(payload_extra_mu = 4e-6) ?(payload_extra_sigma = 1.2e-6)
    ?(irq_delay_mean = 2e-6) () =
  if
    context_switch_mu < 0.0 || context_switch_sigma < 0.0
    || payload_extra_mu < 0.0 || payload_extra_sigma < 0.0
    || irq_delay_mean < 0.0
  then invalid_arg "Jitter.mechanistic: negative parameter";
  Mechanistic
    {
      context_switch_mu;
      context_switch_sigma;
      payload_extra_mu;
      payload_extra_sigma;
      irq_delay_mean;
    }

let latency t rng ctx =
  match t with
  | None_ -> 0.0
  | Parametric { mu; sigma } ->
      Float.max 0.0 (Prng.Sampler.normal rng ~mu ~sigma)
  | Mechanistic m ->
      let base =
        Prng.Sampler.normal rng ~mu:m.context_switch_mu
          ~sigma:m.context_switch_sigma
      in
      let path =
        if ctx.sends_payload then
          Prng.Sampler.normal rng ~mu:m.payload_extra_mu
            ~sigma:m.payload_extra_sigma
        else 0.0
      in
      let blocking = ref 0.0 in
      if m.irq_delay_mean > 0.0 then
        for _ = 1 to ctx.arrivals_in_window do
          blocking :=
            !blocking
            +. Prng.Sampler.exponential rng ~rate:(1.0 /. m.irq_delay_mean)
        done;
      Float.max 0.0 (base +. path +. !blocking)
