type t = {
  sim : Desim.Sim.t;
  dest : Netsim.Packet.t -> unit;
  latency : Stats.Descriptive.Acc.t;
  mutable payload_received : int;
  mutable dummy_received : int;
}

let create sim ?(dest = fun (_ : Netsim.Packet.t) -> ()) () =
  {
    sim;
    dest;
    latency = Stats.Descriptive.Acc.create ();
    payload_received = 0;
    dummy_received = 0;
  }

let port t pkt =
  match pkt.Netsim.Packet.kind with
  | Netsim.Packet.Dummy -> t.dummy_received <- t.dummy_received + 1
  | Netsim.Packet.Payload ->
      t.payload_received <- t.payload_received + 1;
      Stats.Descriptive.Acc.add t.latency
        (Desim.Sim.now t.sim -. pkt.Netsim.Packet.created);
      t.dest pkt
  | Netsim.Packet.Cross ->
      invalid_arg "Receiver.port: cross packet reached the receiver gateway"

let payload_received t = t.payload_received
let dummy_received t = t.dummy_received

let mean_payload_latency t = Stats.Descriptive.Acc.mean t.latency

let max_payload_latency t =
  if Stats.Descriptive.Acc.count t.latency = 0 then 0.0
  else Stats.Descriptive.Acc.max t.latency
