lib/padding/qos.ml: Float
