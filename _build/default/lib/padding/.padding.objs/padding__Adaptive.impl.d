lib/padding/adaptive.ml: Desim Float Jitter Netsim Prng Queue
