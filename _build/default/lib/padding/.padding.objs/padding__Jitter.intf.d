lib/padding/jitter.mli: Prng
