lib/padding/receiver.ml: Desim Netsim Stats
