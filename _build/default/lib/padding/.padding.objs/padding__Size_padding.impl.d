lib/padding/size_padding.ml: Netsim
