lib/padding/timer.mli: Prng
