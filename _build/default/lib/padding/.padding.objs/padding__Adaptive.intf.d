lib/padding/adaptive.mli: Desim Jitter Netsim Prng
