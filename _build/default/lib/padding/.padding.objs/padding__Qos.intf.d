lib/padding/qos.mli:
