lib/padding/mix.mli: Desim Netsim Prng
