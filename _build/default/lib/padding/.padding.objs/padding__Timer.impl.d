lib/padding/timer.ml: Prng
