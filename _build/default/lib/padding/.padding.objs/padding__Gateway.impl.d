lib/padding/gateway.ml: Desim Float Jitter Netsim Prng Queue Timer
