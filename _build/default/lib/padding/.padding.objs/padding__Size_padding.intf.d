lib/padding/size_padding.mli: Netsim
