lib/padding/jitter.ml: Float Prng
