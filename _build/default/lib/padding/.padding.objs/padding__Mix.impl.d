lib/padding/mix.ml: Array Desim Netsim Prng Queue
