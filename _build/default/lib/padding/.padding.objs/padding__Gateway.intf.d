lib/padding/gateway.mli: Desim Jitter Netsim Prng Timer
