lib/padding/receiver.mli: Desim Netsim
