type law =
  | Constant of float
  | Normal of { mean : float; sigma : float }
  | Uniform of { mean : float; half_width : float }
  | Exponential of { mean : float }

let validate = function
  | Constant tau -> if tau <= 0.0 then invalid_arg "Timer: constant period <= 0"
  | Normal { mean; sigma } ->
      if mean <= 0.0 then invalid_arg "Timer: normal mean <= 0";
      if sigma < 0.0 then invalid_arg "Timer: normal sigma < 0"
  | Uniform { mean; half_width } ->
      if mean <= 0.0 then invalid_arg "Timer: uniform mean <= 0";
      if half_width <= 0.0 || half_width >= mean then
        invalid_arg "Timer: uniform half_width out of (0, mean)"
  | Exponential { mean } ->
      if mean <= 0.0 then invalid_arg "Timer: exponential mean <= 0"

let mean = function
  | Constant tau -> tau
  | Normal { mean; _ } -> mean
  | Uniform { mean; _ } -> mean
  | Exponential { mean } -> mean

let sigma = function
  | Constant _ -> 0.0
  | Normal { sigma; _ } -> sigma
  | Uniform { half_width; _ } -> half_width /. sqrt 3.0
  | Exponential { mean } -> mean

let draw law rng =
  match law with
  | Constant tau -> tau
  | Normal { mean; sigma } ->
      if sigma = 0.0 then mean
      else Prng.Sampler.truncated_normal_pos rng ~mu:mean ~sigma
  | Uniform { mean; half_width } ->
      Prng.Sampler.uniform rng ~lo:(mean -. half_width) ~hi:(mean +. half_width)
  | Exponential { mean } -> Prng.Sampler.exponential rng ~rate:(1.0 /. mean)

let is_cit = function Constant _ -> true | Normal _ | Uniform _ | Exponential _ -> false
