type t = {
  sim : Desim.Sim.t;
  rng : Prng.Rng.t;
  min_period : float;
  max_period : float;
  window : float;
  target_queue : float;
  jitter : Jitter.t;
  packet_size : int;
  dest : Netsim.Link.port;
  queue : Netsim.Packet.t Queue.t;
  arrivals : float Queue.t;  (* payload arrival times within the window *)
  mutable period : float;
  mutable last_emit : float;
  mutable payload_sent : int;
  mutable dummy_sent : int;
  mutable stopped : bool;
}

let estimate_rate t =
  let now = Desim.Sim.now t.sim in
  while
    (not (Queue.is_empty t.arrivals)) && Queue.peek t.arrivals < now -. t.window
  do
    ignore (Queue.pop t.arrivals : float)
  done;
  float_of_int (Queue.length t.arrivals) /. t.window

let adapt t =
  (* Aim the send rate slightly above the estimated payload rate so the
     queue stays near target_queue; clamp to the configured band. *)
  let rate = estimate_rate t in
  let backlog = float_of_int (Queue.length t.queue) in
  let pressure = 1.0 +. (0.5 *. (backlog -. t.target_queue)) in
  let desired_rate = Float.max 1.0 (rate *. Float.max pressure 0.1) in
  let p = 1.0 /. desired_rate in
  t.period <- Float.min t.max_period (Float.max t.min_period p)

let rec fire t () =
  if not t.stopped then begin
    let now = Desim.Sim.now t.sim in
    let sends_payload = not (Queue.is_empty t.queue) in
    let ctx =
      {
        Jitter.fire_time = now;
        sends_payload;
        arrivals_in_window = 0;
      }
    in
    let latency = Jitter.latency t.jitter t.rng ctx in
    let emit_time = Float.max (now +. latency) (t.last_emit +. 1e-12) in
    t.last_emit <- emit_time;
    let pkt =
      if sends_payload then begin
        t.payload_sent <- t.payload_sent + 1;
        Queue.pop t.queue
      end
      else begin
        t.dummy_sent <- t.dummy_sent + 1;
        Netsim.Packet.make ~kind:Netsim.Packet.Dummy
          ~size_bytes:t.packet_size ~created:now
      end
    in
    ignore
      (Desim.Sim.at t.sim ~time:emit_time (fun () -> t.dest pkt)
        : Desim.Sim.handle);
    adapt t;
    ignore (Desim.Sim.after t.sim ~delay:t.period (fire t) : Desim.Sim.handle)
  end

let create sim ~rng ?(min_period = 0.010) ?(max_period = 0.040)
    ?(window = 1.0) ?(target_queue = 0.5) ~jitter ?(packet_size = 500) ~dest
    () =
  if min_period <= 0.0 || max_period < min_period then
    invalid_arg "Adaptive.create: bad period band";
  if window <= 0.0 then invalid_arg "Adaptive.create: window <= 0";
  let t =
    {
      sim;
      rng;
      min_period;
      max_period;
      window;
      target_queue;
      jitter;
      packet_size;
      dest;
      queue = Queue.create ();
      arrivals = Queue.create ();
      period = max_period;
      last_emit = Desim.Sim.now sim;
      payload_sent = 0;
      dummy_sent = 0;
      stopped = false;
    }
  in
  ignore (Desim.Sim.after sim ~delay:t.period (fire t) : Desim.Sim.handle);
  t

let input t pkt =
  if pkt.Netsim.Packet.kind <> Netsim.Packet.Payload then
    invalid_arg "Adaptive.input: only payload packets";
  Queue.push pkt t.queue;
  Queue.push (Desim.Sim.now t.sim) t.arrivals

let stop t = t.stopped <- true
let payload_sent t = t.payload_sent
let dummy_sent t = t.dummy_sent
let current_period t = t.period

let overhead t =
  let total = t.payload_sent + t.dummy_sent in
  if total = 0 then 0.0 else float_of_int t.dummy_sent /. float_of_int total
