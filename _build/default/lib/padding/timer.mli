(** Padding timer interval laws (the paper's T in X = T + δ_gw + δ_net).

    CIT = constant interval timer: T ≡ τ, σ_T = 0.
    VIT = variable interval timer: T random with E[T] = τ, σ_T > 0.
    The paper's analysis assumes a normal T; we additionally support
    uniform and exponential laws for the ablation on the interval
    distribution (only the variance enters the theorems). *)

type law =
  | Constant of float
      (** CIT with period τ > 0. *)
  | Normal of { mean : float; sigma : float }
      (** VIT: N(mean, sigma²) truncated to positive values (a timer cannot
          fire in the past).  mean > 0, sigma >= 0. *)
  | Uniform of { mean : float; half_width : float }
      (** VIT: uniform on [mean - hw, mean + hw], 0 < hw < mean. *)
  | Exponential of { mean : float }
      (** VIT: exponential with the given mean > 0 (σ_T = mean). *)

val validate : law -> unit
(** Raises [Invalid_argument] on out-of-domain parameters. *)

val mean : law -> float
val sigma : law -> float
(** Standard deviation of the interval (ignoring the negligible truncation
    of the normal law in the regimes used here, σ << mean). *)

val draw : law -> Prng.Rng.t -> float
(** Sample the next interval; always > 0. *)

val is_cit : law -> bool
