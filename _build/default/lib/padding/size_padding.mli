(** Packet-size padding — the companion countermeasure the paper assumes
    into place (§3.2 remark 3: "all packets have a constant size ...
    observing the packet size will not provide any useful information";
    ref [7] treats the variable-size case).

    Real payload packets vary in size, and the size *distribution* is
    rate- and application-correlated, so an unpadded size column leaks
    just like the timing column.  This module pads every packet up to a
    constant target size so the wire carries one size only. *)

val pad_port : target:int -> dest:Netsim.Link.port -> Netsim.Link.port
(** [pad_port ~target ~dest] returns a port that re-emits each packet at
    exactly [target] bytes (padding preserves kind and creation time).
    Raises [Invalid_argument] at wire-up if [target <= 0], and per packet
    if one exceeds [target] (choose the target as the network MTU; the
    fragmentation path of ref [7] is out of scope). *)

val padded_bytes : unit -> int
(** Total padding bytes added by all {!pad_port}s since the program
    started — the bandwidth price of size padding.  (A process-global
    counter: the simulator is single-threaded and figures run
    sequentially.) *)

val reset_padded_bytes : unit -> unit
